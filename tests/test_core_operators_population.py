"""Tests for the genetic operators, population initialization and fitness."""

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.baselines.gradient import FloatMLP
from repro.core.chromosome import ChromosomeLayout
from repro.core.fitness import FitnessEvaluator, FitnessValues
from repro.core.operators import GeneticOperators
from repro.core.population import PopulationInitializer


@pytest.fixture
def layout(small_topology, approx_config):
    return ChromosomeLayout(small_topology, approx_config)


@pytest.fixture
def operators(layout):
    return GeneticOperators(layout=layout, crossover_probability=1.0, mutation_probability=0.1)


class TestOperators:
    def test_crossover_children_within_bounds(self, layout, operators, rng):
        a, b = layout.random(rng), layout.random(rng)
        child_a, child_b = operators.crossover_pair(a, b, rng)
        layout.validate(child_a)
        layout.validate(child_b)

    def test_uniform_crossover_mixes_genes(self, layout, operators, rng):
        a = layout.lower_bounds.copy()
        b = layout.upper_bounds.copy()
        child_a, child_b = operators.crossover_pair(a, b, rng)
        # Every gene of each child comes from one of the parents.
        assert np.all((child_a == a) | (child_a == b))
        assert np.all((child_b == a) | (child_b == b))
        # And the two children are complementary.
        assert np.all((child_a == a) ^ (child_b == a) | (a == b))

    def test_one_point_crossover(self, layout, rng):
        ops = GeneticOperators(layout, crossover_probability=1.0, crossover="one_point")
        a = layout.lower_bounds.copy()
        b = layout.upper_bounds.copy()
        child_a, _ = ops.crossover_pair(a, b, rng)
        switches = np.count_nonzero(np.diff((child_a == a).astype(int)))
        assert switches <= 1 + np.count_nonzero(a == b)

    def test_no_crossover_when_probability_zero(self, layout, rng):
        ops = GeneticOperators(layout, crossover_probability=0.0)
        a, b = layout.random(rng), layout.random(rng)
        child_a, child_b = ops.crossover_pair(a, b, rng)
        assert np.array_equal(child_a, a) and np.array_equal(child_b, b)

    def test_crossover_shape_mismatch(self, layout, operators, rng):
        with pytest.raises(ValueError):
            operators.crossover_pair(layout.random(rng), np.zeros(3, dtype=np.int64), rng)

    def test_mutation_respects_bounds(self, layout, rng):
        ops = GeneticOperators(layout, mutation_probability=1.0)
        for _ in range(5):
            layout.validate(ops.mutate(layout.random(rng), rng))

    def test_mutation_zero_probability_is_identity(self, layout, rng):
        ops = GeneticOperators(layout, mutation_probability=0.0)
        chromosome = layout.random(rng)
        assert np.array_equal(ops.mutate(chromosome, rng), chromosome)

    def test_mutation_changes_some_genes(self, layout, rng):
        ops = GeneticOperators(layout, mutation_probability=1.0)
        chromosome = layout.random(rng)
        mutated = ops.mutate(chromosome, rng)
        assert np.any(mutated != chromosome)

    def test_tournament_prefers_lower_rank(self, layout, rng):
        ops = GeneticOperators(layout)
        population = [layout.random(rng) for _ in range(2)]
        ranks = np.array([0, 5])
        crowding = np.array([0.0, 0.0])
        wins = sum(
            np.array_equal(
                ops.tournament_select(population, ranks, crowding, rng), population[0]
            )
            for _ in range(30)
        )
        assert wins == 30  # with distinct contestants the lower rank always wins

    def test_make_offspring_count_and_validity(self, layout, operators, rng):
        population = [layout.random(rng) for _ in range(6)]
        ranks = np.zeros(6, dtype=int)
        crowding = np.zeros(6)
        children = operators.make_offspring(population, ranks, crowding, 9, rng)
        assert len(children) == 9
        for child in children:
            layout.validate(child)

    def test_invalid_configuration(self, layout):
        with pytest.raises(ValueError):
            GeneticOperators(layout, crossover_probability=2.0)
        with pytest.raises(ValueError):
            GeneticOperators(layout, mutation_probability=-0.1)
        with pytest.raises(ValueError):
            GeneticOperators(layout, crossover="two_point")


class TestPopulationInitializer:
    def test_population_size_and_validity(self, layout, rng):
        init = PopulationInitializer(layout, doping_fraction=0.1)
        population = init.build(20, rng)
        assert len(population) == 20
        for individual in population:
            layout.validate(individual)

    def test_doped_individuals_have_open_masks(self, layout, rng):
        init = PopulationInitializer(layout, doping_fraction=1.0)
        population = init.build(5, rng)
        mask_flags = layout.mask_gene_flags
        widths = layout.mask_bits_per_gene
        for individual in population:
            assert np.all(individual[mask_flags] == (1 << widths[mask_flags]) - 1)

    def test_seed_model_projects_pow2(self, layout, rng, small_topology):
        seed_model = FloatMLP.random(small_topology, rng)
        init = PopulationInitializer(layout, doping_fraction=1.0, seed_model=seed_model)
        individual = init.build(1, rng)[0]
        decoded = layout.decode(individual)
        # Seeded signs should follow the float model's weight signs.
        float_signs = np.where(seed_model.weights[0] < 0, -1, 1)
        agreement = np.mean(decoded.layers[0].signs == float_signs)
        assert agreement > 0.9

    def test_mask_density_zero_gives_empty_masks(self, layout, rng):
        init = PopulationInitializer(layout, doping_fraction=0.0, mask_density=0.0)
        individual = init.build(1, rng)[0]
        assert np.all(individual[layout.mask_gene_flags] == 0)

    def test_seed_model_topology_mismatch(self, layout, rng):
        from repro.approx.topology import Topology

        wrong = FloatMLP.random(Topology((7, 3, 2)), rng)
        with pytest.raises(ValueError):
            PopulationInitializer(layout, seed_model=wrong)

    def test_invalid_fractions(self, layout):
        with pytest.raises(ValueError):
            PopulationInitializer(layout, doping_fraction=1.5)
        with pytest.raises(ValueError):
            PopulationInitializer(layout, mask_density=-0.1)
        with pytest.raises(ValueError):
            PopulationInitializer(layout).build(0, np.random.default_rng(0))


class TestFitnessEvaluator:
    def test_objectives_and_ranges(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        evaluator = FitnessEvaluator(layout, x_train, y_train)
        fitness = evaluator.evaluate(layout.random(np.random.default_rng(0)))
        assert isinstance(fitness, FitnessValues)
        assert 0.0 <= fitness.accuracy <= 1.0
        assert fitness.error == pytest.approx(1.0 - fitness.accuracy)
        assert fitness.area >= 0
        assert fitness.feasible  # no baseline -> no constraint

    def test_constraint_violation(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        evaluator = FitnessEvaluator(
            layout, x_train, y_train, baseline_accuracy=1.0, max_accuracy_loss=0.0
        )
        fitness = evaluator.evaluate(layout.random(np.random.default_rng(0)))
        if fitness.accuracy < 1.0:
            assert fitness.constraint_violation > 0
            assert not fitness.feasible

    def test_evaluation_counter(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        evaluator = FitnessEvaluator(layout, x_train, y_train)
        rng = np.random.default_rng(0)
        evaluator.evaluate_population([layout.random(rng) for _ in range(7)])
        assert evaluator.evaluations == 7

    def test_input_validation(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, x_train, y_train[:-1])
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, x_train[:, :2], y_train)
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, x_train, y_train, max_accuracy_loss=-1.0)

    def test_objectives_property(self):
        values = FitnessValues(error=0.25, area=12.0, accuracy=0.75)
        assert np.array_equal(values.objectives, np.array([0.25, 12.0]))
