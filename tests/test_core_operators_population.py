"""Tests for the genetic operators, population initialization and fitness."""

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.baselines.gradient import FloatMLP
from repro.core.chromosome import ChromosomeLayout
from repro.core.fitness import FitnessEvaluator, FitnessValues
from repro.core.operators import GeneticOperators
from repro.core.population import PopulationInitializer


@pytest.fixture
def layout(small_topology, approx_config):
    return ChromosomeLayout(small_topology, approx_config)


@pytest.fixture
def operators(layout):
    return GeneticOperators(layout=layout, crossover_probability=1.0, mutation_probability=0.1)


class TestOperators:
    def test_crossover_children_within_bounds(self, layout, operators, rng):
        a, b = layout.random(rng), layout.random(rng)
        child_a, child_b = operators.crossover_pair(a, b, rng)
        layout.validate(child_a)
        layout.validate(child_b)

    def test_uniform_crossover_mixes_genes(self, layout, operators, rng):
        a = layout.lower_bounds.copy()
        b = layout.upper_bounds.copy()
        child_a, child_b = operators.crossover_pair(a, b, rng)
        # Every gene of each child comes from one of the parents.
        assert np.all((child_a == a) | (child_a == b))
        assert np.all((child_b == a) | (child_b == b))
        # And the two children are complementary.
        assert np.all((child_a == a) ^ (child_b == a) | (a == b))

    def test_one_point_crossover(self, layout, rng):
        ops = GeneticOperators(layout, crossover_probability=1.0, crossover="one_point")
        a = layout.lower_bounds.copy()
        b = layout.upper_bounds.copy()
        child_a, _ = ops.crossover_pair(a, b, rng)
        switches = np.count_nonzero(np.diff((child_a == a).astype(int)))
        assert switches <= 1 + np.count_nonzero(a == b)

    def test_no_crossover_when_probability_zero(self, layout, rng):
        ops = GeneticOperators(layout, crossover_probability=0.0)
        a, b = layout.random(rng), layout.random(rng)
        child_a, child_b = ops.crossover_pair(a, b, rng)
        assert np.array_equal(child_a, a) and np.array_equal(child_b, b)

    def test_crossover_shape_mismatch(self, layout, operators, rng):
        with pytest.raises(ValueError):
            operators.crossover_pair(layout.random(rng), np.zeros(3, dtype=np.int64), rng)

    def test_mutation_respects_bounds(self, layout, rng):
        ops = GeneticOperators(layout, mutation_probability=1.0)
        for _ in range(5):
            layout.validate(ops.mutate(layout.random(rng), rng))

    def test_mutation_zero_probability_is_identity(self, layout, rng):
        ops = GeneticOperators(layout, mutation_probability=0.0)
        chromosome = layout.random(rng)
        assert np.array_equal(ops.mutate(chromosome, rng), chromosome)

    def test_mutation_changes_some_genes(self, layout, rng):
        ops = GeneticOperators(layout, mutation_probability=1.0)
        chromosome = layout.random(rng)
        mutated = ops.mutate(chromosome, rng)
        assert np.any(mutated != chromosome)

    def test_tournament_prefers_lower_rank(self, layout, rng):
        ops = GeneticOperators(layout)
        population = [layout.random(rng) for _ in range(2)]
        ranks = np.array([0, 5])
        crowding = np.array([0.0, 0.0])
        wins = sum(
            np.array_equal(
                ops.tournament_select(population, ranks, crowding, rng), population[0]
            )
            for _ in range(30)
        )
        assert wins == 30  # with distinct contestants the lower rank always wins

    def test_make_offspring_count_and_validity(self, layout, operators, rng):
        population = [layout.random(rng) for _ in range(6)]
        ranks = np.zeros(6, dtype=int)
        crowding = np.zeros(6)
        children = operators.make_offspring(population, ranks, crowding, 9, rng)
        assert len(children) == 9
        for child in children:
            layout.validate(child)

    def test_invalid_configuration(self, layout):
        with pytest.raises(ValueError):
            GeneticOperators(layout, crossover_probability=2.0)
        with pytest.raises(ValueError):
            GeneticOperators(layout, mutation_probability=-0.1)
        with pytest.raises(ValueError):
            GeneticOperators(layout, crossover="two_point")

    def test_make_offspring_returns_matrix(self, layout, operators, rng):
        population = np.stack([layout.random(rng) for _ in range(6)])
        children = operators.make_offspring(
            population, np.zeros(6, dtype=int), np.zeros(6), 7, rng
        )
        assert isinstance(children, np.ndarray)
        assert children.shape == (7, layout.num_genes)
        assert children.dtype == np.int64

    def test_make_offspring_rejects_empty_inputs(self, layout, operators, rng):
        population = np.stack([layout.random(rng) for _ in range(4)])
        with pytest.raises(ValueError):
            operators.make_offspring(np.zeros((2, 3, 4)), None, None, 4, rng)
        with pytest.raises(ValueError):
            operators.make_offspring(population, np.zeros(4), np.zeros(4), 0, rng)


class TestVectorizedScalarEquivalence:
    """The matrix engine and the ``slow=True`` oracle share their random
    draws, so for identical generator states the offspring matrices must
    be bit-identical — the strongest form of identity of distribution."""

    @pytest.mark.parametrize("crossover", ["uniform", "one_point"])
    @pytest.mark.parametrize("seed", range(8))
    def test_offspring_bit_identical(self, layout, crossover, seed):
        rng = np.random.default_rng(seed)
        ops = GeneticOperators(
            layout,
            crossover_probability=float(rng.random()),
            mutation_probability=float(rng.random() * 0.5),
            crossover=crossover,
            creep_fraction=float(rng.random()),
        )
        size = int(rng.integers(2, 12))
        count = int(rng.integers(1, 12))
        population = np.stack([layout.random(rng) for _ in range(size)])
        ranks = rng.integers(0, 4, size)
        crowding = rng.random(size)
        crowding[rng.random(size) < 0.3] = np.inf  # boundary individuals
        fast = ops.make_offspring(
            population, ranks, crowding, count, np.random.default_rng(seed + 999)
        )
        slow = ops.make_offspring(
            population,
            ranks,
            crowding,
            count,
            np.random.default_rng(seed + 999),
            slow=True,
        )
        assert np.array_equal(fast, slow)
        for child in fast:
            layout.validate(child)

    def test_list_and_matrix_populations_agree(self, layout, operators, rng):
        population = [layout.random(rng) for _ in range(5)]
        ranks, crowding = np.zeros(5, dtype=int), np.zeros(5)
        from_list = operators.make_offspring(
            population, ranks, crowding, 6, np.random.default_rng(0)
        )
        from_matrix = operators.make_offspring(
            np.stack(population), ranks, crowding, 6, np.random.default_rng(0)
        )
        assert np.array_equal(from_list, from_matrix)


class TestMutationGuarantees:
    """A selected mutable gene must always change value (the effective
    mutation rate equals ``mutation_probability``)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_single_mutate_always_changes_selected_genes(self, layout, seed):
        ops = GeneticOperators(layout, mutation_probability=1.0)
        rng = np.random.default_rng(seed)
        mutable = layout.upper_bounds > layout.lower_bounds
        for chromosome in (
            layout.lower_bounds.copy(),  # creep at the lower bound
            layout.upper_bounds.copy(),  # creep at the upper bound
            layout.random(rng),
        ):
            mutated = ops.mutate(chromosome, rng)
            layout.validate(mutated)
            assert np.all(mutated[mutable] != chromosome[mutable])

    def test_batched_mutation_always_changes_selected_genes(self, layout):
        """Per-gene: exactly the selected mutable genes change value."""
        ops = GeneticOperators(
            layout, crossover_probability=0.0, mutation_probability=0.5
        )
        rng = np.random.default_rng(0)
        original = np.stack(
            [layout.lower_bounds, layout.upper_bounds]
            + [layout.random(rng) for _ in range(6)]
        )
        draws = ops.draw_variation(len(original), len(original), rng)
        mutated = ops.mutate_population(original, draws)
        mutable = layout.upper_bounds > layout.lower_bounds
        selected = draws.mutation_coins < ops.mutation_probability
        changed = mutated != original
        assert np.array_equal(changed[:, mutable], selected[:, mutable])
        assert not np.any(changed[:, ~mutable])
        for child in mutated:
            layout.validate(child)

    def test_mutation_rate_matches_probability(self, layout):
        """Distribution check: the per-gene change frequency matches
        ``mutation_probability`` now that no-op mutations are impossible."""
        probability = 0.25
        ops = GeneticOperators(layout, mutation_probability=probability)
        rng = np.random.default_rng(42)
        rows = 400
        population = np.stack([layout.random(rng) for _ in range(rows)])
        draws = ops.draw_variation(rows, rows, rng)
        mutated = ops.mutate_population(population, draws)
        mutable = layout.upper_bounds > layout.lower_bounds
        rate = np.mean(mutated[:, mutable] != population[:, mutable])
        # 400 rows x ~40 mutable genes: the sample frequency lies within
        # a few standard errors of the true rate.
        assert abs(rate - probability) < 0.02

    def test_creep_reflects_at_bounds(self, layout, rng):
        """Creep steps reflect instead of clipping onto the same value."""
        ops = GeneticOperators(layout, mutation_probability=1.0, creep_fraction=1.0)
        non_mask = ~layout.mask_gene_flags
        span = layout.upper_bounds - layout.lower_bounds
        creeping = non_mask & (span >= 2)
        if not np.any(creeping):
            pytest.skip("layout has no creep-mutated genes")
        lower = ops.mutate(layout.lower_bounds.copy(), rng)
        upper = ops.mutate(layout.upper_bounds.copy(), rng)
        assert np.all(lower[creeping] == layout.lower_bounds[creeping] + 1)
        assert np.all(upper[creeping] == layout.upper_bounds[creeping] - 1)

    def test_random_reset_never_redraws_current_value(self, layout):
        """The reset branch resamples so the gene always moves."""
        ops = GeneticOperators(layout, mutation_probability=1.0, creep_fraction=0.0)
        span = layout.upper_bounds - layout.lower_bounds
        resetting = ~layout.mask_gene_flags & (span >= 2)
        if not np.any(resetting):
            pytest.skip("layout has no reset-mutated genes")
        rng = np.random.default_rng(11)
        for trial in range(50):
            chromosome = layout.random(rng)
            mutated = ops.mutate(chromosome, rng)
            assert np.all(mutated[resetting] != chromosome[resetting])
            layout.validate(mutated)


class _FrozenMaskLayout:
    """Minimal layout stub with a zero-bit mask gene (regression case)."""

    def __init__(self):
        self.lower_bounds = np.array([0, 0, 0], dtype=np.int64)
        self.upper_bounds = np.array([0, 15, 1], dtype=np.int64)
        self.mask_gene_flags = np.array([True, True, False])
        self.mask_bits_per_gene = np.array([0, 4, 0], dtype=np.int64)
        self.num_genes = 3

    def clip(self, chromosome):  # pragma: no cover - must never be needed
        raise AssertionError("mutation must stay in bounds without clipping")


class TestZeroBitMaskGenes:
    """A mask gene with zero mask bits must be skipped, not phantom-flipped."""

    def test_single_mutate_skips_zero_bit_mask_gene(self):
        layout = _FrozenMaskLayout()
        ops = GeneticOperators(layout, mutation_probability=1.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            mutated = ops.mutate(np.array([0, 5, 1], dtype=np.int64), rng)
            assert mutated[0] == 0  # unchanged, and clip was never called
            assert 0 <= mutated[1] <= 15 and mutated[1] != 5
            assert mutated[2] == 0

    @pytest.mark.parametrize("slow", [False, True])
    def test_batched_mutation_skips_zero_bit_mask_gene(self, slow):
        layout = _FrozenMaskLayout()
        ops = GeneticOperators(
            layout, crossover_probability=0.0, mutation_probability=1.0
        )
        rng = np.random.default_rng(1)
        population = np.array([[0, 5, 1], [0, 9, 0]], dtype=np.int64)
        children = ops.make_offspring(
            population, np.zeros(2, dtype=int), np.zeros(2), 8, rng, slow=slow
        )
        assert np.all(children[:, 0] == 0)
        assert np.all((children[:, 1] >= 0) & (children[:, 1] <= 15))
        assert np.all((children[:, 2] == 0) | (children[:, 2] == 1))

    def test_frozen_mask_bounds_are_skipped(self, rng):
        """Ablation-style frozen mask genes (lower == upper) never mutate."""
        from repro.approx.topology import Topology
        from repro.core.chromosome import ChromosomeLayout as _Layout

        layout = _Layout(Topology((4, 3, 2)), ApproxConfig())
        mask_flags = layout.mask_gene_flags
        bits = layout.mask_bits_per_gene
        layout.lower_bounds = layout.lower_bounds.copy()
        layout.lower_bounds[mask_flags] = (1 << bits[mask_flags]) - 1
        ops = GeneticOperators(layout, mutation_probability=1.0)
        chromosome = layout.clip(layout.random(rng))
        mutated = ops.mutate(chromosome, rng)
        assert np.all(mutated[mask_flags] == chromosome[mask_flags])
        layout.validate(mutated)


class TestPopulationInitializer:
    def test_population_size_and_validity(self, layout, rng):
        init = PopulationInitializer(layout, doping_fraction=0.1)
        population = init.build(20, rng)
        assert len(population) == 20
        for individual in population:
            layout.validate(individual)

    def test_doped_individuals_have_open_masks(self, layout, rng):
        init = PopulationInitializer(layout, doping_fraction=1.0)
        population = init.build(5, rng)
        mask_flags = layout.mask_gene_flags
        widths = layout.mask_bits_per_gene
        for individual in population:
            assert np.all(individual[mask_flags] == (1 << widths[mask_flags]) - 1)

    def test_seed_model_projects_pow2(self, layout, rng, small_topology):
        seed_model = FloatMLP.random(small_topology, rng)
        init = PopulationInitializer(layout, doping_fraction=1.0, seed_model=seed_model)
        individual = init.build(1, rng)[0]
        decoded = layout.decode(individual)
        # Seeded signs should follow the float model's weight signs.
        float_signs = np.where(seed_model.weights[0] < 0, -1, 1)
        agreement = np.mean(decoded.layers[0].signs == float_signs)
        assert agreement > 0.9

    def test_mask_density_zero_gives_empty_masks(self, layout, rng):
        init = PopulationInitializer(layout, doping_fraction=0.0, mask_density=0.0)
        individual = init.build(1, rng)[0]
        assert np.all(individual[layout.mask_gene_flags] == 0)

    def test_seed_model_topology_mismatch(self, layout, rng):
        from repro.approx.topology import Topology

        wrong = FloatMLP.random(Topology((7, 3, 2)), rng)
        with pytest.raises(ValueError):
            PopulationInitializer(layout, seed_model=wrong)

    def test_invalid_fractions(self, layout):
        with pytest.raises(ValueError):
            PopulationInitializer(layout, doping_fraction=1.5)
        with pytest.raises(ValueError):
            PopulationInitializer(layout, mask_density=-0.1)
        with pytest.raises(ValueError):
            PopulationInitializer(layout).build(0, np.random.default_rng(0))


class TestFitnessEvaluator:
    def test_objectives_and_ranges(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        evaluator = FitnessEvaluator(layout, x_train, y_train)
        fitness = evaluator.evaluate(layout.random(np.random.default_rng(0)))
        assert isinstance(fitness, FitnessValues)
        assert 0.0 <= fitness.accuracy <= 1.0
        assert fitness.error == pytest.approx(1.0 - fitness.accuracy)
        assert fitness.area >= 0
        assert fitness.feasible  # no baseline -> no constraint

    def test_constraint_violation(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        evaluator = FitnessEvaluator(
            layout, x_train, y_train, baseline_accuracy=1.0, max_accuracy_loss=0.0
        )
        fitness = evaluator.evaluate(layout.random(np.random.default_rng(0)))
        if fitness.accuracy < 1.0:
            assert fitness.constraint_violation > 0
            assert not fitness.feasible

    def test_evaluation_counter(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        evaluator = FitnessEvaluator(layout, x_train, y_train)
        rng = np.random.default_rng(0)
        evaluator.evaluate_population([layout.random(rng) for _ in range(7)])
        assert evaluator.evaluations == 7

    def test_input_validation(self, layout, tiny_dataset):
        x_train, y_train, _, _ = tiny_dataset
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, x_train, y_train[:-1])
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, x_train[:, :2], y_train)
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, x_train, y_train, max_accuracy_loss=-1.0)

    def test_objectives_property(self):
        values = FitnessValues(error=0.25, area=12.0, accuracy=0.75)
        assert np.array_equal(values.objectives, np.array([0.25, 12.0]))
