"""Tests for the pow2 weight representation and mask utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.approx.masks import (
    apply_mask,
    bits_to_mask,
    full_mask,
    mask_popcount,
    mask_to_bits,
    random_mask,
)
from repro.approx.pow2 import (
    Pow2Weight,
    nearest_pow2,
    nearest_pow2_array,
    pow2_value,
    pow2_values,
)


class TestPow2Weight:
    def test_value(self):
        assert Pow2Weight(sign=1, exponent=3).value == 8
        assert Pow2Weight(sign=-1, exponent=0).value == -1
        assert int(Pow2Weight(sign=-1, exponent=5)) == -32

    def test_apply_is_shift_and_sign(self):
        weight = Pow2Weight(sign=-1, exponent=2)
        assert np.array_equal(weight.apply(np.array([0, 1, 3])), np.array([0, -4, -12]))

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            Pow2Weight(sign=0, exponent=1)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            Pow2Weight(sign=1, exponent=-1)


class TestPow2Helpers:
    def test_pow2_value_vectorized(self):
        signs = np.array([1, -1, 1])
        exps = np.array([0, 3, 6])
        assert np.array_equal(pow2_value(signs, exps), np.array([1, -8, 64]))

    def test_pow2_value_rejects_bad_sign(self):
        with pytest.raises(ValueError):
            pow2_value(np.array([2]), np.array([0]))

    def test_pow2_values_grid(self):
        grid = pow2_values(2)
        assert np.array_equal(grid, np.array([-4, -2, -1, 1, 2, 4]))
        assert np.array_equal(pow2_values(1, include_negative=False), np.array([1, 2]))

    def test_nearest_pow2_exact_values(self):
        assert nearest_pow2(8.0, 6).value == 8
        assert nearest_pow2(-16.0, 6).value == -16

    def test_nearest_pow2_rounds_to_closest(self):
        assert nearest_pow2(3.0, 6).value in (2, 4)
        assert abs(nearest_pow2(100.0, 6).value) == 64  # saturates at 2^6

    def test_nearest_pow2_array_matches_scalar(self):
        values = np.array([0.7, -3.0, 40.0, -0.1])
        signs, exps = nearest_pow2_array(values, max_exponent=6)
        for value, s, k in zip(values, signs, exps):
            scalar = nearest_pow2(float(value), 6)
            assert s * (1 << k) == scalar.value

    @given(st.floats(min_value=-200, max_value=200, allow_nan=False))
    def test_property_projection_within_grid(self, value):
        signs, exps = nearest_pow2_array(np.array([value]), max_exponent=6)
        assert signs[0] in (-1, 1)
        assert 0 <= exps[0] <= 6


class TestMasks:
    def test_full_mask(self):
        assert full_mask(4) == 0b1111
        assert full_mask(8) == 255

    def test_full_mask_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            full_mask(0)

    def test_apply_mask_paper_example(self):
        # Paper Section III-B: A = a5a4a3a2a1a0, mask 101101 keeps a5,a3,a2,a0.
        value = 0b111111
        assert apply_mask(np.array([value]), np.array([0b101101]))[0] == 0b101101

    def test_apply_mask_zero_removes_summand(self):
        assert apply_mask(np.array([13]), np.array([0]))[0] == 0

    def test_apply_mask_rejects_negative_mask(self):
        with pytest.raises(ValueError):
            apply_mask(np.array([1]), np.array([-1]))

    def test_mask_popcount(self):
        assert np.array_equal(
            mask_popcount(np.array([0, 1, 0b1011, 255])), np.array([0, 1, 3, 8])
        )

    def test_mask_to_bits_roundtrip(self):
        mask = 0b1010
        bits = mask_to_bits(mask, 4)
        assert np.array_equal(bits, np.array([0, 1, 0, 1]))
        assert bits_to_mask(bits) == mask

    def test_mask_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            mask_to_bits(16, 4)

    def test_bits_to_mask_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_mask(np.array([0, 2]))

    def test_random_mask_scalar_and_array(self, rng):
        scalar = random_mask(4, rng)
        assert 0 <= scalar <= 15
        array = random_mask(4, rng, density=1.0, size=(3, 2))
        assert array.shape == (3, 2)
        assert np.all(array == 15)
        zeros = random_mask(4, rng, density=0.0, size=(5,))
        assert np.all(zeros == 0)

    def test_random_mask_rejects_bad_density(self, rng):
        with pytest.raises(ValueError):
            random_mask(4, rng, density=1.5)

    @given(st.integers(min_value=0, max_value=255))
    def test_property_popcount_matches_python(self, mask):
        assert mask_popcount(np.array([mask]))[0] == bin(mask).count("1")

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0))
    def test_property_mask_roundtrip(self, bits, seed):
        mask = seed % (1 << bits)
        assert bits_to_mask(mask_to_bits(mask, bits)) == mask
