"""Tests for the NSGA-II trainer (integration of the core package)."""

import numpy as np
import pytest

from repro.core.trainer import GAConfig, GATrainer
from repro.hardware.fast_area import fast_mlp_fa_count


@pytest.fixture(scope="module")
def trained(tiny_dataset_module):
    x_train, y_train, _, _ = tiny_dataset_module
    config = GAConfig(population_size=16, generations=8, seed=0)
    trainer = GATrainer((4, 3, 2), ga_config=config)
    result = trainer.train(x_train, y_train)
    return trainer, result


@pytest.fixture(scope="module")
def tiny_dataset_module():
    from repro.datasets.preprocessing import normalize_01, stratified_split
    from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_classification
    from repro.quant.quantizers import quantize_inputs

    rng = np.random.default_rng(7)
    spec = SyntheticSpec(num_features=4, num_classes=2, num_samples=160, class_sep=3.0, noise=0.15)
    features, labels = generate_synthetic_classification(spec, rng)
    features = normalize_01(features)
    x_train, y_train, x_test, y_test = stratified_split(features, labels, 0.7, rng)
    return quantize_inputs(x_train), y_train, quantize_inputs(x_test), y_test


class TestGAConfig:
    def test_defaults_follow_paper(self):
        config = GAConfig()
        assert config.crossover_probability == pytest.approx(0.7)
        assert config.doping_fraction == pytest.approx(0.10)
        assert config.max_accuracy_loss == pytest.approx(0.10)

    def test_validation(self):
        with pytest.raises(ValueError):
            GAConfig(population_size=2)
        with pytest.raises(ValueError):
            GAConfig(generations=0)


class TestGATrainer:
    def test_result_structure(self, trained):
        trainer, result = trained
        # Unique-lookup counting: genomes duplicated within a batch are
        # folded, so the count is at most one lookup per requested slot.
        assert 16 < result.evaluations <= 16 * (8 + 1)
        last = result.history[-1]
        assert last.evaluations == result.evaluations
        assert last.cache_hits + last.fitness_computations == last.evaluations
        assert 0.0 <= last.cache_hit_rate <= 1.0
        assert len(result.history) == 8
        assert len(result.estimated_front) >= 1
        assert result.wall_clock_seconds > 0

    def test_front_points_carry_chromosomes(self, trained):
        trainer, result = trained
        for point in result.estimated_front:
            mlp = result.decode(point)
            assert fast_mlp_fa_count(mlp) == int(point.area)

    def test_front_is_non_dominated(self, trained):
        _, result = trained
        front = result.estimated_front
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (b.error <= a.error and b.area < a.area) or b.error > a.error

    def test_training_improves_over_random(self, trained, tiny_dataset_module):
        _, result = trained
        x_train, y_train, _, _ = tiny_dataset_module
        best = result.best_accuracy_point()
        majority = max(np.mean(y_train == 0), np.mean(y_train == 1))
        assert best.accuracy >= majority

    def test_hypervolume_non_decreasing(self, trained):
        _, result = trained
        hypervolumes = [stats.hypervolume for stats in result.history]
        assert all(b >= a - 1e-9 for a, b in zip(hypervolumes, hypervolumes[1:]))

    def test_select_within_accuracy_loss(self, trained):
        _, result = trained
        best = result.best_accuracy_point()
        selected = result.select_within_accuracy_loss(0.05, baseline_accuracy=best.accuracy)
        assert selected is not None
        assert selected.accuracy >= best.accuracy - 0.05
        assert selected.area <= best.area

    def test_select_requires_baseline(self, trained):
        _, result = trained
        with pytest.raises(ValueError):
            result.select_within_accuracy_loss(0.05)

    def test_deterministic_given_seed(self, tiny_dataset_module):
        x_train, y_train, _, _ = tiny_dataset_module
        config = GAConfig(population_size=12, generations=4, seed=3)
        result_a = GATrainer((4, 3, 2), ga_config=config).train(x_train, y_train)
        result_b = GATrainer((4, 3, 2), ga_config=config).train(x_train, y_train)
        front_a = [(p.error, p.area) for p in result_a.estimated_front]
        front_b = [(p.error, p.area) for p in result_b.estimated_front]
        assert front_a == front_b

    def test_deterministic_across_operator_paths(self, tiny_dataset_module):
        """Vectorized and ``slow_operators`` runs share every random draw,
        so the same seed must produce identical fronts and histories."""
        x_train, y_train, _, _ = tiny_dataset_module
        fast_config = GAConfig(population_size=12, generations=4, seed=3)
        slow_config = GAConfig(
            population_size=12, generations=4, seed=3, slow_operators=True
        )
        fast = GATrainer((4, 3, 2), ga_config=fast_config).train(x_train, y_train)
        slow = GATrainer((4, 3, 2), ga_config=slow_config).train(x_train, y_train)
        assert [(p.error, p.area) for p in fast.estimated_front] == [
            (p.error, p.area) for p in slow.estimated_front
        ]
        assert [
            (s.best_error, s.best_area, s.mean_error, s.mean_area)
            for s in fast.history
        ] == [
            (s.best_error, s.best_area, s.mean_error, s.mean_area)
            for s in slow.history
        ]

    def test_deterministic_across_worker_counts(self, tiny_dataset_module):
        """The process-pool fitness path must not change the evolution:
        the same seed gives identical fronts with 0 and >1 workers."""
        x_train, y_train, _, _ = tiny_dataset_module
        serial_config = GAConfig(population_size=12, generations=3, seed=5, n_workers=0)
        pooled_config = GAConfig(population_size=12, generations=3, seed=5, n_workers=2)
        serial = GATrainer((4, 3, 2), ga_config=serial_config).train(x_train, y_train)
        pooled = GATrainer((4, 3, 2), ga_config=pooled_config).train(x_train, y_train)
        assert [(p.error, p.area) for p in serial.estimated_front] == [
            (p.error, p.area) for p in pooled.estimated_front
        ]

    def test_area_objective_disabled(self, tiny_dataset_module):
        x_train, y_train, _, _ = tiny_dataset_module
        config = GAConfig(population_size=12, generations=4, seed=0)
        result = GATrainer((4, 3, 2), ga_config=config).train(
            x_train, y_train, area_objective=False
        )
        assert len(result.estimated_front) >= 1

    def test_constraint_fallback_when_infeasible(self, tiny_dataset_module):
        # An impossible baseline accuracy makes every candidate infeasible;
        # the trainer must still return a usable front.
        x_train, y_train, _, _ = tiny_dataset_module
        config = GAConfig(population_size=8, generations=2, seed=0, max_accuracy_loss=0.0)
        result = GATrainer((4, 3, 2), ga_config=config).train(
            x_train, y_train, baseline_accuracy=2.0
        )
        assert len(result.estimated_front) >= 1
