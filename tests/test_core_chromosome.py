"""Tests for the chromosome encoding (Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP
from repro.approx.topology import Topology
from repro.core.chromosome import GENES_PER_CONNECTION, ChromosomeLayout


@pytest.fixture
def layout(small_topology, approx_config):
    return ChromosomeLayout(small_topology, approx_config, learn_shifts=True)


class TestLayoutStructure:
    def test_gene_count(self, layout, small_topology):
        expected = 0
        for fan_in, fan_out in small_topology.layer_shapes():
            expected += fan_out * (fan_in * GENES_PER_CONNECTION + 1)
        expected += small_topology.num_layers - 1  # shift genes
        assert layout.num_genes == expected

    def test_no_shift_genes_when_disabled(self, small_topology, approx_config):
        with_shift = ChromosomeLayout(small_topology, approx_config, learn_shifts=True)
        without = ChromosomeLayout(small_topology, approx_config, learn_shifts=False)
        assert with_shift.num_genes == without.num_genes + small_topology.num_layers - 1

    def test_bounds_shapes_and_ordering(self, layout):
        assert layout.lower_bounds.shape == (layout.num_genes,)
        assert layout.upper_bounds.shape == (layout.num_genes,)
        assert np.all(layout.lower_bounds <= layout.upper_bounds)

    def test_mask_gene_bounds(self, layout, approx_config):
        mask_bounds = layout.upper_bounds[layout.mask_gene_flags]
        # First-layer masks are 4-bit, second-layer masks 8-bit.
        assert set(np.unique(mask_bounds)) == {15, 255}
        assert np.all(layout.lower_bounds[layout.mask_gene_flags] == 0)

    def test_mask_bits_per_gene(self, layout):
        widths = layout.mask_bits_per_gene
        assert set(np.unique(widths[layout.mask_gene_flags])) == {4, 8}
        assert np.all(widths[~layout.mask_gene_flags] == 0)

    def test_describe_gene_kinds(self, layout):
        kinds = [layout.describe_gene(i)[0] for i in range(layout.num_genes)]
        assert kinds.count("shift") == 1
        assert kinds.count("bias") == 5  # 3 hidden + 2 output neurons
        assert kinds.count("mask") == kinds.count("sign") == kinds.count("exponent")

    def test_describe_gene_out_of_range(self, layout):
        with pytest.raises(IndexError):
            layout.describe_gene(layout.num_genes)

    def test_validate_and_clip(self, layout, rng):
        chromosome = layout.random(rng)
        layout.validate(chromosome)
        bad = chromosome.copy()
        bad[0] = 10**6
        with pytest.raises(ValueError):
            layout.validate(bad)
        layout.validate(layout.clip(bad))

    def test_validate_rejects_wrong_shape(self, layout):
        with pytest.raises(ValueError):
            layout.validate(np.zeros(3, dtype=np.int64))


class TestEncodeDecode:
    def test_decode_produces_valid_mlp(self, layout, rng):
        mlp = layout.decode(layout.random(rng))
        assert isinstance(mlp, ApproximateMLP)
        assert tuple(mlp.topology.sizes) == tuple(layout.topology.sizes)

    def test_encode_decode_roundtrip_on_random_mlp(self, layout, rng):
        mlp = ApproximateMLP.random(layout.topology, layout.config, rng)
        chromosome = layout.encode(mlp)
        decoded = layout.decode(chromosome)
        for original, restored in zip(mlp.layers, decoded.layers):
            assert np.array_equal(original.masks, restored.masks)
            assert np.array_equal(original.signs, restored.signs)
            assert np.array_equal(original.exponents, restored.exponents)
            assert np.array_equal(original.biases, restored.biases)

    def test_decode_encode_roundtrip_on_chromosome(self, layout, rng):
        chromosome = layout.random(rng)
        assert np.array_equal(layout.encode(layout.decode(chromosome)), chromosome)

    def test_decoded_forward_matches_encoded_model(self, layout, rng):
        mlp = ApproximateMLP.random(layout.topology, layout.config, rng)
        decoded = layout.decode(layout.encode(mlp))
        x = rng.integers(0, 16, size=(20, layout.topology.num_inputs))
        assert np.array_equal(mlp.forward(x), decoded.forward(x))

    def test_encode_rejects_topology_mismatch(self, layout, rng):
        other = ApproximateMLP.random(Topology((5, 3, 2)), layout.config, rng)
        with pytest.raises(ValueError):
            layout.encode(other)

    def test_decode_rejects_wrong_length(self, layout):
        with pytest.raises(ValueError):
            layout.decode(np.zeros(layout.num_genes + 1, dtype=np.int64))

    def test_shift_genes_control_activation(self, layout, rng):
        chromosome = layout.random(rng)
        chromosome[layout.shift_slice] = 0
        assert layout.decode(chromosome).shifts[0] == 0
        chromosome[layout.shift_slice] = layout.upper_bounds[layout.shift_slice]
        assert layout.decode(chromosome).shifts[0] == int(
            layout.upper_bounds[layout.shift_slice][0]
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_property_roundtrip_random_topologies(self, seed):
        rng = np.random.default_rng(seed)
        topology = Topology(
            (int(rng.integers(1, 8)), int(rng.integers(1, 5)), int(rng.integers(2, 6)))
        )
        layout = ChromosomeLayout(topology, ApproxConfig(), learn_shifts=bool(rng.integers(0, 2)))
        chromosome = layout.random(rng)
        assert np.array_equal(layout.encode(layout.decode(chromosome)), chromosome)
