"""Property suite: emitted RTL artifacts round-trip losslessly.

For random MLPs (via the shared ``make_mlp``/``random_population``
factories) across topologies, bit widths and mask densities:

* the module text's accumulator expressions parse back out
  (``extract_accumulator_expressions``) and re-execute to the exact
  model accumulators — generation → extraction → evaluation is
  lossless;
* the testbench text's stimulus and golden responses parse back out
  (``extract_testbench_vectors``) bit-identically to what was applied,
  through the new named :class:`~repro.rtl.testbench.TestbenchVectors`
  result;
* the microverilog simulator, the compiled gate-level netlists and the
  Python model agree on every vector (``verify_design(eda=True)`` with
  zero mismatches) — the full five-oracle closure.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.config import ApproxConfig
from repro.eda.microverilog import simulate_mlp_module
from repro.evaluation.verification import verify_design
from repro.hardware.simulator import simulate_neuron_netlist
from repro.rtl.testbench import (
    TestbenchVectors,
    extract_testbench_vectors,
    generate_testbench,
)
from repro.rtl.verilog import (
    evaluate_neuron_expression,
    extract_accumulator_expressions,
    generate_mlp_verilog,
)


def _draw_case(make_mlp, seed, hidden, input_bits, mask_density):
    rng = np.random.default_rng(seed)
    config = ApproxConfig(input_bits=input_bits)
    mlp = make_mlp(
        rng, sizes=(4, hidden, 3), config=config, mask_density=mask_density
    )
    vectors = rng.integers(
        0, config.max_input_value + 1, size=(24, mlp.topology.num_inputs)
    )
    return mlp, vectors.astype(np.int64)


class TestExpressionRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**9),
        hidden=st.integers(min_value=2, max_value=5),
        input_bits=st.integers(min_value=2, max_value=6),
        mask_density=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_accumulators_reexecute_exactly(
        self, make_mlp, seed, hidden, input_bits, mask_density
    ):
        mlp, vectors = _draw_case(make_mlp, seed, hidden, input_bits, mask_density)
        text = generate_mlp_verilog(mlp)
        expressions = extract_accumulator_expressions(text)
        assert len(expressions) == sum(layer.fan_out for layer in mlp.layers)
        activations = vectors
        for layer_index, layer in enumerate(mlp.layers):
            accumulators = layer.accumulate(activations)
            for j in range(layer.fan_out):
                recovered = evaluate_neuron_expression(
                    expressions[(layer_index, j)], activations
                )
                assert np.array_equal(recovered, accumulators[:, j])
            if layer.activation is not None:
                activations = layer.activation(accumulators)


class TestTestbenchRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**9),
        hidden=st.integers(min_value=2, max_value=5),
        input_bits=st.integers(min_value=2, max_value=6),
        mask_density=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_vectors_and_golden_recovered_bit_identically(
        self, make_mlp, seed, hidden, input_bits, mask_density
    ):
        mlp, vectors = _draw_case(make_mlp, seed, hidden, input_bits, mask_density)
        text = generate_testbench(mlp, vectors=vectors)
        parsed = extract_testbench_vectors(text)
        assert isinstance(parsed, TestbenchVectors)
        assert np.array_equal(parsed.vectors, vectors)
        assert np.array_equal(parsed.golden, mlp.predict(vectors))
        assert parsed.num_vectors == vectors.shape[0]
        assert parsed.num_inputs == vectors.shape[1]
        # Historical unpacking stays supported.
        recovered_vectors, recovered_golden = parsed
        assert recovered_vectors is parsed.vectors
        assert recovered_golden is parsed.golden


class TestFiveOracleClosure:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**9),
        hidden=st.integers(min_value=2, max_value=5),
        input_bits=st.integers(min_value=2, max_value=6),
        mask_density=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_microverilog_netlist_and_model_agree(
        self, make_mlp, seed, hidden, input_bits, mask_density
    ):
        mlp, vectors = _draw_case(make_mlp, seed, hidden, input_bits, mask_density)
        verification = verify_design(mlp, vectors, eda=True)
        assert verification.eda_oracle is True
        assert verification.total_mismatches == 0
        assert verification.passed

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_simulator_matches_gate_level_accumulators(self, make_mlp, seed):
        """The microverilog class decision chains from the same
        accumulators the compiled netlists produce (layer 0 checked
        directly against the gate-level engine)."""
        mlp, vectors = _draw_case(make_mlp, seed, hidden=3, input_bits=4, mask_density=0.5)
        layer = mlp.layers[0]
        accumulators = layer.accumulate(vectors)
        for j in range(layer.fan_out):
            gate = simulate_neuron_netlist(layer.neuron(j), vectors)
            assert np.array_equal(gate, accumulators[:, j])
        text = generate_mlp_verilog(mlp)
        assert np.array_equal(simulate_mlp_module(text, vectors), mlp.predict(vectors))


class TestPopulationRoundTrip:
    def test_layout_decoded_population_verifies_clean(self, random_population):
        """GA-shaped candidates (layout decode) survive the closure too."""
        rng = np.random.default_rng(5)
        for model in random_population(rng, (4, 3, 2), 6):
            vectors = rng.integers(0, 16, size=(16, 4))
            verification = verify_design(model, vectors, eda=True)
            assert verification.passed
