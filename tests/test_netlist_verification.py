"""Tests for the batched netlist simulator and the differential harness.

Three layers of guarantees, mirroring the repo's vectorization pattern
(`tests/test_core_operators_population.py`):

* the compiled batched engine is **bit-identical** to the retained
  scalar ``slow=True`` oracle across 100+ random netlists/vector sets;
* randomized **property-based differential tests** (seeded hypothesis
  sweeps over gate types, input widths, negative weights and pow2-mask
  configs, including two's-complement boundary values) assert
  netlist-sim == Python model == (where applicable) testbench golden
  vectors;
* the ``verify_front`` harness reports zero model/netlist/RTL
  mismatches over a synthesized front, detects tampered RTL, memoizes
  through ``EvaluationCache``, and is reachable from the pipeline/CLI.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.neuron import ApproximateNeuron
from repro.core.cache import EvaluationCache
from repro.evaluation.verification import verify_design, verify_front
from repro.hardware.netlist import Netlist, build_neuron_netlist
from repro.hardware.simulator import (
    CompiledNetlist,
    compile_netlist,
    simulate,
    simulate_batch,
    simulate_neuron_netlist,
)
from repro.rtl.testbench import extract_testbench_vectors, generate_testbench
from repro.rtl.verilog import (
    evaluate_neuron_expression,
    extract_accumulator_expressions,
    generate_mlp_verilog,
    generate_neuron_expression,
)


def _neuron_buses(neuron, vectors):
    vectors = np.asarray(vectors, dtype=np.int64)
    return {f"x{i}": vectors[:, i] for i in range(neuron.fan_in)}


#: Placeholder result for runner tests that stub out the session.
from repro.evaluation.artifacts import Artifact as _Artifact

_EMPTY_ARTIFACT = _Artifact.build(
    "stub", [], scale="smoke", seed=0, datasets=(), display=()
)


@pytest.fixture(scope="module")
def tiny_ga_result():
    from repro.core.trainer import GAConfig, GATrainer

    rng = np.random.default_rng(77)
    inputs = rng.integers(0, 16, size=(60, 4))
    labels = rng.integers(0, 2, size=60)
    trainer = GATrainer(
        (4, 3, 2), ga_config=GAConfig(population_size=12, generations=3, seed=1)
    )
    return trainer.train(inputs, labels)


# ----------------------------------------------------------------------
# Batched engine vs scalar oracle
# ----------------------------------------------------------------------
class TestBatchedOracleEquivalence:
    def test_100_random_netlists_bit_identical(self, make_neuron):
        """The slow=True oracle guarantee: ≥100 random netlists, exact."""
        rng = np.random.default_rng(0)
        for trial in range(110):
            fan_in = int(rng.integers(1, 7))
            input_bits = int(rng.integers(1, 9))
            neuron = make_neuron(rng, fan_in=fan_in, input_bits=input_bits)
            vectors = rng.integers(0, 1 << input_bits, size=(int(rng.integers(1, 9)), fan_in))
            fast = simulate_neuron_netlist(neuron, vectors)
            slow = simulate_neuron_netlist(neuron, vectors, slow=True)
            model = neuron.accumulate(np.asarray(vectors, dtype=np.int64)).tolist()
            assert fast == slow == model, trial

    def test_boundary_vectors_twos_complement(self, make_neuron):
        """All-zero / all-max stimulus hits the accumulator extremes."""
        rng = np.random.default_rng(1)
        for signs in ([1, 1, 1], [-1, -1, -1], [1, -1, 1]):
            neuron = ApproximateNeuron(
                masks=np.array([0b1111, 0b1111, 0b1111]),
                signs=np.array(signs),
                exponents=np.array([0, 2, 4]),
                bias=int(rng.integers(-64, 64)),
                input_bits=4,
            )
            vectors = np.array([[0, 0, 0], [15, 15, 15], [15, 0, 15]])
            results = simulate_neuron_netlist(neuron, vectors)
            assert results == simulate_neuron_netlist(neuron, vectors, slow=True)
            assert results == neuron.accumulate(vectors).tolist()
            # The all-max vector reaches the accumulator extreme of the
            # uniform-sign neurons (modulo the bias term).
            if all(s == 1 for s in signs):
                assert results[1] - neuron.bias + max(neuron.bias, 0) == neuron.max_accumulator()
            if all(s == -1 for s in signs):
                assert results[1] - neuron.bias + min(neuron.bias, 0) == neuron.min_accumulator()

    def test_mux_and_const_gate_kernels(self):
        """Hand-built netlist covering MUX2 and the constant generators."""
        netlist = Netlist()
        a, b = netlist.add_input_bus("a", 2)
        (sel,) = netlist.add_input_bus("sel", 1)
        one = netlist.add_gate("CONST1", ())[0]
        muxed = netlist.add_gate("MUX2", (a, b, sel))[0]
        inverted = netlist.add_gate("XNOR2", (muxed, one))[0]
        zero = netlist.add_gate("CONST0", ())[0]
        low = netlist.add_gate("OR2", (inverted, zero))[0]
        netlist.output_bits = [low, muxed]
        values = {
            "a": np.array([0, 1, 2, 3, 1]),
            "sel": np.array([0, 0, 1, 1, 1]),
        }
        fast = simulate_batch(netlist, values)
        slow = simulate_batch(netlist, values, slow=True)
        assert np.array_equal(fast, slow)

    def test_input_validation(self, make_neuron):
        rng = np.random.default_rng(2)
        neuron = make_neuron(rng, fan_in=2, input_bits=4)
        netlist = build_neuron_netlist(neuron)
        with pytest.raises(KeyError):
            simulate_batch(netlist, {"x0": np.array([1])})
        with pytest.raises(ValueError):
            simulate_batch(netlist, {"x0": np.array([1]), "x1": np.array([16])})
        with pytest.raises(ValueError):
            simulate_batch(netlist, {"x0": np.array([1, 2]), "x1": np.array([1])})
        with pytest.raises(ValueError):
            simulate_batch(netlist, {"x0": np.array([[1]]), "x1": np.array([[1]])})
        with pytest.raises(ValueError):
            simulate_neuron_netlist(neuron, np.zeros((3, 5), dtype=int))


# ----------------------------------------------------------------------
# Compile-time structural validation (the former per-vector hot scan)
# ----------------------------------------------------------------------
class TestCompiledPlan:
    def test_undriven_net_rejected_at_compile_time(self):
        netlist = Netlist()
        (a,) = netlist.add_input_bus("a", 1)
        phantom = netlist.new_net()  # allocated but never driven
        out = netlist.add_gate("AND2", (a, phantom))[0]
        netlist.output_bits = [out]
        with pytest.raises(RuntimeError, match="undriven"):
            compile_netlist(netlist)
        with pytest.raises(RuntimeError, match="undriven"):
            simulate(netlist, {"a": 1})

    def test_undriven_output_bit_rejected(self):
        netlist = Netlist()
        (a,) = netlist.add_input_bus("a", 1)
        netlist.output_bits = [a, netlist.new_net()]
        with pytest.raises(RuntimeError, match="output bits"):
            compile_netlist(netlist)

    def test_duplicate_driver_rejected(self):
        netlist = Netlist()
        (a,) = netlist.add_input_bus("a", 1)
        out = netlist.add_gate("NOT", (a,))[0]
        from repro.hardware.gates import Gate

        netlist.gates.append(Gate(gate_type="BUF", inputs=(a,), outputs=(out,)))
        netlist.invalidate_plan()
        netlist.output_bits = [out]
        with pytest.raises(ValueError, match="driven more than once"):
            compile_netlist(netlist)

    def test_empty_output_bus_rejected(self):
        """The width == 0 two's-complement edge case is a clear error."""
        netlist = Netlist()
        netlist.add_input_bus("a", 2)
        with pytest.raises(ValueError, match="empty output bus"):
            compile_netlist(netlist)
        with pytest.raises(ValueError, match="empty output bus"):
            simulate(netlist, {"a": 1})

    def test_plan_is_memoized_and_invalidated(self, make_neuron):
        rng = np.random.default_rng(3)
        netlist = build_neuron_netlist(make_neuron(rng))
        plan = netlist.compiled()
        assert netlist.compiled() is plan
        assert isinstance(plan, CompiledNetlist)
        netlist.add_gate("NOT", (netlist.output_bits[0],))
        assert netlist.compiled() is not plan

    def test_output_bus_reassignment_recompiles_plan(self):
        """Reassigning ``output_bits`` (the dominant mutation idiom) after
        a compile must not leave the batched path on the stale bus."""
        netlist = Netlist()
        a, b = netlist.add_input_bus("a", 2)
        inverted = netlist.add_gate("NOT", (a,))[0]
        netlist.output_bits = [a, b]
        values = {"a": np.array([0, 1, 2, 3])}
        first = simulate_batch(netlist, values)
        assert np.array_equal(first, simulate_batch(netlist, values, slow=True))
        netlist.output_bits = [inverted]  # no mutator method involved
        second = simulate_batch(netlist, values)
        assert np.array_equal(second, simulate_batch(netlist, values, slow=True))
        assert not np.array_equal(first, second)

    def test_wide_bus_exact_packing(self):
        """Buses wider than 62 bits fall back to exact Python-int packing."""
        netlist = Netlist()
        bits = [netlist.add_constant(0) for _ in range(70)]
        netlist.output_bits = list(bits)
        assert compile_netlist(netlist).run({}).tolist() == [0]
        netlist2 = Netlist()
        bits = [netlist2.add_constant(0) for _ in range(70)]
        netlist2.constants[bits[0]] = 1
        netlist2.constants[bits[69]] = 1  # sign bit → negative
        netlist2.output_bits = list(bits)
        assert compile_netlist(netlist2).run({}).tolist() == [1 - (1 << 69)]


# ----------------------------------------------------------------------
# Property-based differential sweeps
# ----------------------------------------------------------------------
GATE_POOL = ("NOT", "BUF", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2",
             "MUX2", "HA", "FA")
GATE_ARITY = {"NOT": 1, "BUF": 1, "MUX2": 3, "HA": 2, "FA": 3}


class TestPropertyDifferential:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**9),
        fan_in=st.integers(min_value=1, max_value=6),
        input_bits=st.integers(min_value=1, max_value=8),
        all_negative=st.booleans(),
        pow2_masks=st.booleans(),
    )
    def test_neuron_netlist_matches_model(
        self, seed, fan_in, input_bits, all_negative, pow2_masks
    ):
        """Seeded sweep over widths, negative weights and pow2 masks."""
        rng = np.random.default_rng(seed)
        if pow2_masks:
            masks = 1 << rng.integers(0, input_bits, size=fan_in)
        else:
            masks = rng.integers(0, 1 << input_bits, size=fan_in)
        signs = (
            -np.ones(fan_in, dtype=np.int64)
            if all_negative
            else rng.choice([-1, 1], size=fan_in)
        )
        neuron = ApproximateNeuron(
            masks=masks,
            signs=signs,
            exponents=rng.integers(0, 5, size=fan_in),
            bias=int(rng.integers(-128, 128)),
            input_bits=input_bits,
        )
        high = (1 << input_bits) - 1
        vectors = rng.integers(0, high + 1, size=(6, fan_in))
        vectors[0, :] = 0     # two's-complement boundary values
        vectors[1, :] = high
        fast = simulate_neuron_netlist(neuron, vectors)
        assert fast == simulate_neuron_netlist(neuron, vectors, slow=True)
        assert fast == neuron.accumulate(vectors).tolist()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9))
    def test_random_gate_dag_matches_scalar(self, seed):
        """Random netlists over every gate type: batched == scalar walk."""
        rng = np.random.default_rng(seed)
        netlist = Netlist()
        width = int(rng.integers(1, 6))
        pool = list(netlist.add_input_bus("a", width))
        pool.append(netlist.add_constant(0))
        pool.append(netlist.add_constant(1))
        for _ in range(int(rng.integers(1, 26))):
            gate_type = GATE_POOL[int(rng.integers(0, len(GATE_POOL)))]
            arity = GATE_ARITY.get(gate_type, 2)
            inputs = tuple(pool[int(i)] for i in rng.integers(0, len(pool), size=arity))
            pool.extend(netlist.add_gate(gate_type, inputs))
        out_width = int(rng.integers(1, min(8, len(pool)) + 1))
        netlist.output_bits = [
            pool[int(i)] for i in rng.integers(0, len(pool), size=out_width)
        ]
        values = {"a": rng.integers(0, 1 << width, size=6)}
        fast = simulate_batch(netlist, values)
        slow = simulate_batch(netlist, values, slow=True)
        assert np.array_equal(fast, slow)


# ----------------------------------------------------------------------
# Cross-layer differential verification (model ↔ netlist ↔ RTL)
# ----------------------------------------------------------------------
class TestVerifyDesign:
    def test_random_mlps_verify_clean(self, make_mlp):
        rng = np.random.default_rng(5)
        for sizes in ((4, 3, 2), (5, 4, 3), (3, 3, 3, 2)):
            mlp = make_mlp(rng, sizes=sizes, mask_density=0.6)
            vectors = rng.integers(0, 16, size=(10, sizes[0]))
            result = verify_design(mlp, vectors)
            assert result.passed
            assert result.num_vectors == 10
            assert result.num_neurons == sum(sizes[1:])

    def test_testbench_roundtrip(self, make_mlp, rng):
        mlp = make_mlp(rng)
        vectors = rng.integers(0, 16, size=(7, 4))
        text = generate_testbench(mlp, vectors=vectors)
        tb_vectors, golden = extract_testbench_vectors(text)
        assert np.array_equal(tb_vectors, vectors)
        assert np.array_equal(golden, mlp.predict(vectors))

    def test_tampered_testbench_detected(self, make_mlp, rng):
        """The harness is a real differential check: flipping one golden
        response in the emitted RTL text must be reported."""
        mlp = make_mlp(rng)
        vectors = rng.integers(0, 16, size=(6, 4))
        text = generate_testbench(mlp, vectors=vectors)
        golden = extract_testbench_vectors(text)[1]
        flipped = 1 - int(golden[0])
        needle = f"class_index !== 1'd{int(golden[0])}"
        assert needle in text
        tampered = text.replace(needle, f"class_index !== 1'd{flipped}", 1)
        result = verify_design(mlp, vectors, testbench_text=tampered)
        assert not result.passed
        assert result.model_mismatches == 1
        assert result.rtl_mismatches == 1
        assert result.netlist_mismatches == 0

    def test_foreign_stimulus_rejected(self, make_mlp, rng):
        mlp = make_mlp(rng)
        vectors = rng.integers(0, 16, size=(4, 4))
        other = generate_testbench(mlp, vectors=(vectors + 1) % 16)
        with pytest.raises(ValueError, match="stimulus"):
            verify_design(mlp, vectors, testbench_text=other)
        with pytest.raises(ValueError, match="shape"):
            verify_design(mlp, np.zeros((2, 9), dtype=int))

    def test_extractor_rejects_foreign_text(self):
        with pytest.raises(ValueError):
            extract_testbench_vectors("module empty; endmodule")

    def test_verilog_expression_evaluator_matches_model(self, make_mlp):
        """The parsed-back RTL expressions execute to the exact model
        accumulators, layer by layer (including the act_ prefix form)."""
        rng = np.random.default_rng(11)
        mlp = make_mlp(rng, sizes=(4, 3, 2), mask_density=0.6)
        vectors = rng.integers(0, 16, size=(8, 4))
        expressions = extract_accumulator_expressions(generate_mlp_verilog(mlp))
        activations = vectors
        for layer_index, layer in enumerate(mlp.layers):
            acc = layer.accumulate(activations)
            for j in range(layer.fan_out):
                evaluated = evaluate_neuron_expression(
                    expressions[(layer_index, j)], activations
                )
                assert np.array_equal(evaluated, acc[:, j]), (layer_index, j)
                # ... and against the expression generator directly.
                expr = generate_neuron_expression(mlp, layer_index, j, "in")
                assert np.array_equal(
                    evaluate_neuron_expression(expr, activations), acc[:, j]
                )
            if layer.activation is not None:
                activations = layer.activation(acc)

    def test_expression_evaluator_rejects_garbage(self):
        with pytest.raises(ValueError):
            evaluate_neuron_expression("(in0 | 4'd3)", np.zeros((2, 1), dtype=int))
        with pytest.raises(ValueError):
            evaluate_neuron_expression(
                "(in5 & 4'd3)", np.zeros((2, 2), dtype=int)
            )  # references input 5 of 2

    def test_tampered_verilog_module_detected(self, make_mlp, rng):
        """A wrong mask literal in the emitted module text is reported."""
        mlp = make_mlp(rng, sizes=(4, 3, 2), mask_density=1.0)
        vectors = rng.integers(1, 16, size=(6, 4))
        vectors[:, 0] |= 1  # the tampered mask bit is exercised for sure
        text = generate_mlp_verilog(mlp)
        mask = int(mlp.layers[0].masks[0, 0])
        needle = f"in0 & 4'd{mask}"
        assert needle in text
        tampered = text.replace(needle, f"in0 & 4'd{mask ^ 0b1}", 1)
        result = verify_design(mlp, vectors, verilog_text=tampered)
        assert result.expression_mismatches > 0
        assert not result.passed
        # The other legs are unaffected by the module-text tamper.
        assert result.netlist_mismatches == 0
        assert result.rtl_mismatches == 0
        assert result.model_mismatches == 0

    def test_truncated_verilog_module_rejected(self, make_mlp, rng):
        mlp = make_mlp(rng)
        vectors = rng.integers(0, 16, size=(4, 4))
        text = generate_mlp_verilog(mlp)
        first_wire = text.index("wire signed")
        second_wire = text.index("wire signed", first_wire + 1)
        truncated = text[:first_wire] + text[second_wire:]
        with pytest.raises(ValueError, match="accumulator wires"):
            verify_design(mlp, vectors, verilog_text=truncated)


class TestVerifyFront:
    def test_front_verifies_clean_end_to_end(self, tiny_ga_result):
        verification = verify_front(tiny_ga_result, num_vectors=16, seed=3)
        assert verification.num_designs == len(tiny_ga_result.estimated_front)
        assert verification.num_designs > 0
        assert verification.num_vectors == 16
        assert verification.netlist_mismatches == 0
        assert verification.rtl_mismatches == 0
        assert verification.model_mismatches == 0
        assert verification.total_mismatches == 0
        assert verification.passed

    def test_cache_memoizes_per_design_results(self, tiny_ga_result):
        cache = EvaluationCache()
        first = verify_front(tiny_ga_result, num_vectors=8, cache=cache)
        assert first.cache_hits == 0
        # Freshly decoded models are stored back for downstream stages
        # (mirroring evaluate_front).
        assert len(cache.models) == first.num_designs
        second = verify_front(tiny_ga_result, num_vectors=8, cache=cache)
        assert second.cache_hits == second.num_designs == first.num_designs
        assert second.results == first.results
        # Different stimulus is a different key: no stale hits.
        third = verify_front(tiny_ga_result, num_vectors=8, seed=9, cache=cache)
        assert third.cache_hits == 0

    def test_max_designs_cap(self, tiny_ga_result):
        capped = verify_front(tiny_ga_result, num_vectors=4, max_designs=1)
        assert capped.num_designs == 1
        empty = verify_front(tiny_ga_result, num_vectors=4, max_designs=0)
        assert empty.num_designs == 0
        assert empty.passed
        assert empty.num_vectors == 0

    def test_front_shares_compiled_plans_across_designs(self, tiny_ga_result):
        """One compiled netlist schedule serves every parameter-identical
        neuron across the whole front."""
        verification = verify_front(tiny_ga_result, num_vectors=8, seed=3)
        assert (
            verification.plans_compiled + verification.plan_reuses
            == verification.num_neuron_checks
        )
        assert 0 < verification.plans_compiled <= verification.num_neuron_checks

    def test_plan_sharing_is_result_identical(self, tiny_ga_result):
        """Shared plans change nothing: per-design verify_design without a
        plan cache produces the same results."""
        from repro.evaluation.verification import _draw_vectors

        config = tiny_ga_result.layout.config
        vectors = _draw_vectors(
            tiny_ga_result.layout.topology.num_inputs,
            config.max_input_value,
            8,
            seed=3,
        )
        shared = verify_front(tiny_ga_result, vectors=vectors)
        solo = [
            verify_design(tiny_ga_result.decode(point), vectors)
            for point in tiny_ga_result.estimated_front
        ]
        assert shared.results == solo

    def test_plan_cache_reuses_identical_neurons(self, make_neuron, rng):
        from repro.evaluation.verification import NetlistPlanCache

        neuron_a = make_neuron(rng)
        neuron_b = ApproximateNeuron(
            masks=neuron_a.masks.copy(),
            signs=neuron_a.signs.copy(),
            exponents=neuron_a.exponents.copy(),
            bias=neuron_a.bias,
            input_bits=neuron_a.input_bits,
        )
        cache = NetlistPlanCache()
        first = cache.netlist(neuron_a)
        second = cache.netlist(neuron_b)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1
        # A different bias is a different netlist.
        different = ApproximateNeuron(
            masks=neuron_a.masks.copy(),
            signs=neuron_a.signs.copy(),
            exponents=neuron_a.exponents.copy(),
            bias=neuron_a.bias + 1,
            input_bits=neuron_a.input_bits,
        )
        assert cache.netlist(different) is not first
        assert len(cache) == 2

    def test_verification_survives_snapshot_roundtrip(self, tiny_ga_result, tmp_path):
        """DesignVerification entries are on the snapshot allowlist."""
        cache = EvaluationCache()
        first = verify_front(tiny_ga_result, num_vectors=8, cache=cache)
        path = tmp_path / "verify.cache.pkl"
        saved = cache.save(path)
        assert saved >= first.num_designs
        restored = EvaluationCache()
        assert restored.load(path) == saved
        again = verify_front(tiny_ga_result, num_vectors=8, cache=restored)
        assert again.cache_hits == first.num_designs
        assert again.results == first.results


# ----------------------------------------------------------------------
# Pipeline / CLI wiring
# ----------------------------------------------------------------------
class TestPipelineVerifyRtl:
    def test_pipeline_runs_and_stores_verification(self):
        from repro.experiments.config import ExperimentScale
        from repro.experiments.pipeline import DatasetPipeline

        scale = ExperimentScale(
            name="tiny-verify",
            datasets=("breast_cancer",),
            max_samples=160,
            gradient_epochs=8,
            gradient_restarts=1,
            ga_population=10,
            ga_generations=3,
            max_front_designs=8,
            verify_rtl=True,
            verify_vectors=10,
        )
        pipeline = DatasetPipeline(scale)
        result = pipeline.approximate("breast_cancer")
        verification = result.approximate.verification
        assert verification is not None
        assert verification.num_vectors == 10
        assert verification.passed
        summary = pipeline.verification_summary()
        assert summary["breast_cancer"] is verification

    def test_pipeline_skips_verification_by_default(self):
        from repro.experiments.pipeline import ApproximateResult

        assert ApproximateResult.__dataclass_fields__["verification"].default is None

    def test_runner_flag_plumbs_into_scale(self, monkeypatch, capsys):
        from repro.experiments import runner

        seen = {}

        class StubSession(runner.ExperimentSession):
            def run(self, experiments=None, export_dir=None, dataset_workers=None, **kwargs):
                seen["scale"] = self.scale
                return {name: _EMPTY_ARTIFACT for name in experiments}

        monkeypatch.setattr(runner, "ExperimentSession", StubSession)
        assert (
            runner.main(
                ["--experiment", "table1", "--scale", "smoke",
                 "--verify-rtl", "--verify-vectors", "9"]
            )
            == 0
        )
        assert seen["scale"].verify_rtl is True
        assert seen["scale"].verify_vectors == 9
        assert "table1" in capsys.readouterr().out

    def test_runner_rejects_bad_vector_count(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(
                ["--experiment", "table1", "--verify-rtl", "--verify-vectors", "0"]
            )

    def test_runner_rejects_orphan_verify_vectors(self):
        """--verify-vectors alone would silently verify nothing."""
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--experiment", "table1", "--verify-vectors", "16"])

    def test_single_vector_stimulus_is_the_zero_boundary(self, tiny_ga_result):
        """num_vectors=1 still pins a boundary assignment (all-zero)."""
        from repro.evaluation.verification import _draw_vectors

        single = _draw_vectors(4, 15, 1, seed=0)
        assert single.shape == (1, 4)
        assert np.all(single == 0)
        assert verify_front(tiny_ga_result, num_vectors=1).passed


# ----------------------------------------------------------------------
# Seeded stimulus + EDA oracle wiring
# ----------------------------------------------------------------------
class TestSeededVerification:
    def test_draw_vectors_is_seed_deterministic(self):
        """Two draws with the same seed are bit-identical; a different
        seed draws different stimulus (beyond the pinned boundaries)."""
        from repro.evaluation.verification import _draw_vectors

        first = _draw_vectors(5, 15, 32, seed=11)
        second = _draw_vectors(5, 15, 32, seed=11)
        assert np.array_equal(first, second)
        other = _draw_vectors(5, 15, 32, seed=12)
        assert not np.array_equal(first, other)

    def test_verify_front_reruns_identically_for_same_seed(self, tiny_ga_result):
        first = verify_front(tiny_ga_result, num_vectors=8, seed=21)
        second = verify_front(tiny_ga_result, num_vectors=8, seed=21)
        assert second.results == first.results

    def test_eda_flag_is_part_of_the_cache_key(self, tiny_ga_result):
        """eda=False and eda=True verifications must not share entries —
        an eda=True report carries the extra oracle's verdict."""
        cache = EvaluationCache()
        plain = verify_front(tiny_ga_result, num_vectors=6, cache=cache)
        assert plain.cache_hits == 0
        eda = verify_front(tiny_ga_result, num_vectors=6, cache=cache, eda=True)
        assert eda.cache_hits == 0
        assert all(result.eda_oracle for result in eda.results)
        assert not any(result.eda_oracle for result in plain.results)
        again = verify_front(tiny_ga_result, num_vectors=6, cache=cache, eda=True)
        assert again.cache_hits == again.num_designs
        assert again.results == eda.results

    def test_scale_defaults(self):
        from repro.experiments.config import ExperimentScale

        fields = ExperimentScale.__dataclass_fields__
        assert fields["verify_eda"].default is False
        assert fields["verify_seed"].default is None

    def test_pipeline_uses_verify_seed_over_scale_seed(self, monkeypatch):
        """verify_seed overrides the experiment seed for stimulus draws."""
        from repro.experiments import pipeline as pipeline_module
        from repro.experiments.config import ExperimentScale
        from repro.experiments.pipeline import DatasetPipeline

        seen = {}

        def spy_verify_front(ga_result, **kwargs):
            seen.update(kwargs)
            return None

        monkeypatch.setattr(pipeline_module, "verify_front", spy_verify_front)
        scale = ExperimentScale(
            name="tiny-seeded",
            datasets=("breast_cancer",),
            max_samples=120,
            gradient_epochs=4,
            gradient_restarts=1,
            ga_population=8,
            ga_generations=2,
            max_front_designs=4,
            verify_rtl=True,
            verify_vectors=6,
            verify_seed=99,
            verify_eda=True,
        )
        DatasetPipeline(scale).approximate("breast_cancer")
        assert seen["seed"] == 99
        assert seen["eda"] is True

    def test_runner_verify_eda_flag_plumbs_into_scale(self, monkeypatch):
        from repro.experiments import runner

        seen = {}

        class StubSession(runner.ExperimentSession):
            def run(self, experiments=None, export_dir=None, dataset_workers=None, **kwargs):
                seen["scale"] = self.scale
                return {name: _EMPTY_ARTIFACT for name in experiments}

        monkeypatch.setattr(runner, "ExperimentSession", StubSession)
        assert (
            runner.main(
                ["--experiment", "table1", "--scale", "smoke",
                 "--verify-eda", "--verify-seed", "7"]
            )
            == 0
        )
        assert seen["scale"].verify_eda is True
        # --verify-eda implies the RTL harness it extends.
        assert seen["scale"].verify_rtl is True
        assert seen["scale"].verify_seed == 7

    def test_runner_rejects_orphan_verify_seed(self):
        """--verify-seed alone would silently seed nothing."""
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["--experiment", "table1", "--verify-seed", "3"])
