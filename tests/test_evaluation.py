"""Tests for metrics, Pareto/hardware analysis, feasibility and reporting."""

import numpy as np
import pytest

from repro.core.pareto import ParetoPoint
from repro.evaluation.feasibility import assess_feasibility
from repro.evaluation.metrics import (
    accuracy_score,
    confusion_matrix,
    error_rate,
    per_class_accuracy,
)
from repro.evaluation.pareto_analysis import (
    EvaluatedDesign,
    select_design,
    true_pareto_front,
)
from repro.evaluation.report import format_table, reduction_factor
from repro.hardware.synthesis import HardwareReport


class TestMetrics:
    def test_accuracy_and_error(self):
        y_true = np.array([0, 1, 1, 0])
        y_pred = np.array([0, 1, 0, 0])
        assert accuracy_score(y_true, y_pred) == pytest.approx(0.75)
        assert error_rate(y_true, y_pred) == pytest.approx(0.25)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.zeros(3), np.zeros(4))

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2]), 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 3)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0]), 0)

    def test_per_class_accuracy(self):
        recalls = per_class_accuracy(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]), 3)
        assert recalls[0] == pytest.approx(0.5)
        assert recalls[1] == pytest.approx(1.0)
        assert np.isnan(recalls[2])


def make_report(area: float, power: float, voltage: float = 1.0) -> HardwareReport:
    return HardwareReport(
        area_cm2=area,
        power_mw=power,
        delay_ms=10.0,
        voltage=voltage,
        clock_period_ms=200.0,
    )


def make_design(accuracy: float, area: float, power: float = 1.0) -> EvaluatedDesign:
    return EvaluatedDesign(
        point=ParetoPoint(error=1 - accuracy, area=area, accuracy=accuracy),
        test_accuracy=accuracy,
        report=make_report(area, power),
    )


class TestParetoAnalysis:
    def test_true_pareto_front_filters_dominated(self):
        designs = [
            make_design(0.95, 10.0),
            make_design(0.90, 5.0),
            make_design(0.85, 8.0),  # dominated by the second
        ]
        front = true_pareto_front(designs)
        assert len(front) == 2
        assert all(d.area_cm2 != 8.0 for d in front)

    def test_select_design_smallest_within_budget(self):
        designs = [make_design(0.95, 10.0), make_design(0.92, 3.0), make_design(0.80, 1.0)]
        chosen = select_design(designs, baseline_accuracy=0.95, max_accuracy_loss=0.05)
        assert chosen.area_cm2 == 3.0

    def test_select_design_fallback_to_best_accuracy(self):
        designs = [make_design(0.5, 1.0), make_design(0.6, 2.0)]
        chosen = select_design(designs, baseline_accuracy=0.99, max_accuracy_loss=0.01)
        assert chosen.test_accuracy == 0.6

    def test_select_design_empty(self):
        assert select_design([], baseline_accuracy=0.9) is None


class TestFeasibility:
    def test_zone_assignment_from_report(self):
        result = assess_feasibility(make_report(area=2.0, power=0.5), design_name="toy")
        assert result.self_powered
        assert result.label == "Printed energy harvester"

    def test_voltage_rescaling_applied(self):
        report = make_report(area=2.0, power=10.0, voltage=1.0)
        at_nominal = assess_feasibility(report, "toy")
        at_low = assess_feasibility(report, "toy", voltage=0.6)
        assert at_nominal.zone.label == "Zinergy"
        assert at_low.power_mw == pytest.approx(3.6)
        assert at_low.zone.label == "Blue Spark"

    def test_unsustainable_area(self):
        result = assess_feasibility(make_report(area=100.0, power=0.5), "huge")
        assert result.label == "Unsustainable Area"
        assert not result.zone.feasible


class TestReporting:
    def test_reduction_factor(self):
        assert reduction_factor(10.0, 2.0) == pytest.approx(5.0)
        assert reduction_factor(10.0, 0.0) == float("inf")
        with pytest.raises(ValueError):
            reduction_factor(-1.0, 1.0)

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "xyz" in text and "0.001" in text

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
