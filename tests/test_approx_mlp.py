"""Tests for the ApproximateMLP model."""

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP, default_shifts
from repro.approx.topology import Topology


class TestDefaultShifts:
    def test_one_shift_per_layer(self):
        topology = Topology((10, 3, 2))
        shifts = default_shifts(topology, ApproxConfig())
        assert len(shifts) == 2
        assert all(s >= 0 for s in shifts)

    def test_wider_layer_needs_larger_shift(self):
        config = ApproxConfig()
        narrow = default_shifts(Topology((2, 2, 2)), config)[0]
        wide = default_shifts(Topology((64, 2, 2)), config)[0]
        assert wide > narrow


class TestApproximateMLP:
    def test_random_construction_shapes(self, small_topology, approx_config, rng):
        mlp = ApproximateMLP.random(small_topology, approx_config, rng)
        assert len(mlp.layers) == 2
        assert mlp.layers[0].masks.shape == (4, 3)
        assert mlp.layers[1].masks.shape == (3, 2)
        assert mlp.layers[0].input_bits == 4
        assert mlp.layers[1].input_bits == 8
        assert mlp.layers[0].activation is not None
        assert mlp.layers[1].activation is None

    def test_random_default_rng_is_deterministic(self, small_topology, approx_config):
        # Regression (lint RP03): ApproximateMLP.random() without an
        # explicit generator used to draw an irreproducible network.
        first = ApproximateMLP.random(small_topology, approx_config)
        second = ApproximateMLP.random(small_topology, approx_config)
        for a, b in zip(first.layers, second.layers):
            np.testing.assert_array_equal(a.masks, b.masks)
            np.testing.assert_array_equal(a.signs, b.signs)
            np.testing.assert_array_equal(a.exponents, b.exponents)
            np.testing.assert_array_equal(a.biases, b.biases)

    def test_forward_and_predict_shapes(self, random_mlp, rng):
        x = rng.integers(0, 16, size=(13, 4))
        scores = random_mlp.forward(x)
        assert scores.shape == (13, 2)
        predictions = random_mlp.predict(x)
        assert predictions.shape == (13,)
        assert set(np.unique(predictions)).issubset({0, 1})

    def test_forward_accepts_single_sample(self, random_mlp):
        assert random_mlp.forward(np.array([1, 2, 3, 4])).shape == (1, 2)

    def test_accuracy_range(self, random_mlp, rng):
        x = rng.integers(0, 16, size=(50, 4))
        y = rng.integers(0, 2, size=50)
        assert 0.0 <= random_mlp.accuracy(x, y) <= 1.0

    def test_mask_density_extremes(self, small_topology, approx_config, rng, make_mlp):
        dense = make_mlp(rng, sizes=small_topology.sizes, config=approx_config, mask_density=1.0)
        sparse = make_mlp(rng, sizes=small_topology.sizes, config=approx_config, mask_density=0.0)
        assert dense.sparsity() == 0.0
        assert sparse.sparsity() == 1.0
        assert dense.retained_bits > sparse.retained_bits

    def test_serialization_roundtrip(self, random_mlp, rng):
        clone = ApproximateMLP.from_dict(random_mlp.to_dict())
        x = rng.integers(0, 16, size=(10, 4))
        assert np.array_equal(clone.forward(x), random_mlp.forward(x))
        assert clone.shifts == random_mlp.shifts

    def test_copy_is_independent(self, random_mlp, rng):
        clone = random_mlp.copy()
        clone.layers[0].masks[:] = 0
        assert random_mlp.layers[0].masks.sum() > 0 or random_mlp.retained_bits >= 0
        x = rng.integers(0, 16, size=(5, 4))
        # The original is unaffected by mutating the copy.
        assert not np.array_equal(clone.layers[0].masks, random_mlp.layers[0].masks) or (
            random_mlp.layers[0].masks.sum() == 0
        )

    def test_layer_count_mismatch_rejected(self, small_topology, approx_config, random_mlp):
        with pytest.raises(ValueError):
            ApproximateMLP(
                topology=Topology((4, 3, 3, 2)),
                config=approx_config,
                layers=random_mlp.layers,
            )

    def test_num_parameters_matches_topology(self, random_mlp, small_topology):
        assert random_mlp.num_parameters == small_topology.num_parameters

    def test_callable_alias(self, random_mlp, rng):
        x = rng.integers(0, 16, size=(3, 4))
        assert np.array_equal(random_mlp(x), random_mlp.forward(x))

    def test_fully_pruned_mlp_predicts_constant(self, small_topology, approx_config, rng, make_mlp):
        mlp = make_mlp(rng, sizes=small_topology.sizes, config=approx_config, mask_density=0.0)
        for layer in mlp.layers:
            layer.biases[:] = 0
        x = rng.integers(0, 16, size=(20, 4))
        assert np.all(mlp.predict(x) == mlp.predict(x)[0])
