"""Equivalence tests for the vectorized fitness engine.

Every fast path introduced by the vectorized engine keeps its original
scalar implementation around as a reference oracle; these tests assert
exact agreement over randomized models, batches and populations:

* bit-plane forward == naive 3-D accumulate (bitwise),
* broadcast non-dominated sort == Deb's pairwise-loop sort,
* sweep-based ``pareto_front`` / ``ParetoArchive`` == all-pairs scans,
* memoized ``evaluate_population`` == per-chromosome ``compute``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP
from repro.approx.topology import Topology
from repro.core.chromosome import ChromosomeLayout
from repro.core.fitness import FitnessEvaluator
from repro.core.nsga2 import (
    constrained_domination_matrix,
    constrained_dominates,
    fast_non_dominated_sort,
    fast_non_dominated_sort_reference,
)
from repro.core.pareto import (
    ParetoArchive,
    ParetoPoint,
    pareto_front,
    pareto_front_reference,
)
from repro.hardware.fast_area import (
    fast_mlp_fa_count,
    fast_population_fa_count,
    reduce_columns_fa_count,
    reduce_columns_fa_count_reference,
)


def slow_forward(mlp: ApproximateMLP, x: np.ndarray) -> np.ndarray:
    """Reference forward pass built on the naive 3-D accumulate."""
    activations = np.asarray(x, dtype=np.int64)
    if activations.ndim == 1:
        activations = activations[None, :]
    for layer in mlp.layers:
        acc = layer.accumulate(activations, slow=True)
        activations = acc if layer.activation is None else layer.activation(acc)
    return activations


class TestBitPlaneForward:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_forward_matches_naive_accumulate(self, seed):
        rng = np.random.default_rng(seed)
        num_layers = int(rng.integers(2, 5))
        sizes = tuple(int(s) for s in rng.integers(2, 24, size=num_layers))
        mlp = ApproximateMLP.random(
            Topology(sizes), ApproxConfig(), rng, mask_density=float(rng.random())
        )
        batch = rng.integers(0, 16, size=(int(rng.integers(1, 64)), sizes[0]))
        assert np.array_equal(mlp.forward(batch), slow_forward(mlp, batch))

    def test_layer_accumulate_slow_and_fast_agree(self):
        rng = np.random.default_rng(0)
        mlp = ApproximateMLP.random(Topology((7, 6, 3)), ApproxConfig(), rng)
        x = rng.integers(0, 16, size=(50, 7))
        layer = mlp.layers[0]
        assert np.array_equal(layer.accumulate(x), layer.accumulate(x, slow=True))

    def test_out_of_range_inputs_match(self):
        # Bits above `input_bits` never survive the masks; both paths
        # must drop them identically.
        rng = np.random.default_rng(1)
        mlp = ApproximateMLP.random(Topology((5, 4, 2)), ApproxConfig(), rng)
        x = rng.integers(0, 1 << 12, size=(20, 5))
        layer = mlp.layers[0]
        assert np.array_equal(layer.accumulate(x), layer.accumulate(x, slow=True))

    def test_bit_planes_cached_and_readonly(self):
        rng = np.random.default_rng(2)
        mlp = ApproximateMLP.random(Topology((4, 3, 2)), ApproxConfig(), rng)
        layer = mlp.layers[0]
        planes = layer.bit_planes
        assert planes is layer.bit_planes
        with pytest.raises(ValueError):
            planes[0, 0] = 1

    def test_invalidate_caches_after_in_place_edit(self):
        rng = np.random.default_rng(3)
        mlp = ApproximateMLP.random(Topology((4, 3, 2)), ApproxConfig(), rng)
        layer = mlp.layers[0]
        x = rng.integers(0, 16, size=(10, 4))
        layer.bit_planes
        layer.masks[:] = 0
        layer.invalidate_caches()
        assert np.array_equal(layer.accumulate(x), layer.accumulate(x, slow=True))

    def test_decode_precomputes_bit_planes(self):
        rng = np.random.default_rng(4)
        layout = ChromosomeLayout(Topology((4, 3, 2)), ApproxConfig())
        mlp = layout.decode(layout.random(rng))
        assert all(layer._bit_planes is not None for layer in mlp.layers)

    def test_decode_rejects_out_of_bounds_genes(self):
        rng = np.random.default_rng(7)
        layout = ChromosomeLayout(Topology((4, 3, 2)), ApproxConfig())
        chromosome = layout.random(rng)
        chromosome[2] = -3  # exponent gene below its lower bound
        with pytest.raises(ValueError):
            layout.decode(chromosome)

    def test_output_bits_cached(self):
        rng = np.random.default_rng(5)
        mlp = ApproximateMLP.random(Topology((4, 3, 2)), ApproxConfig(), rng)
        out_layer = mlp.layers[-1]
        assert out_layer.output_bits == out_layer.output_bits
        assert out_layer._output_bits is not None

    def test_copy_is_deep_and_equal(self):
        rng = np.random.default_rng(6)
        mlp = ApproximateMLP.random(Topology((6, 5, 3)), ApproxConfig(), rng)
        x = rng.integers(0, 16, size=(32, 6))
        clone = mlp.copy()
        assert np.array_equal(clone.forward(x), mlp.forward(x))
        clone.layers[0].masks[:] = 0
        clone.layers[0].invalidate_caches()
        assert not np.array_equal(clone.layers[0].masks, mlp.layers[0].masks)


class TestFaCountReduction:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_bounded_buffer_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        width = int(rng.integers(1, 30))
        fan_out = int(rng.integers(1, 8))
        # Tall columns exercise the carry headroom (fan_in >= 1024 layers
        # produce histograms in the thousands).
        peak = int(rng.choice([3, 50, 1025, 5000]))
        counts = rng.integers(0, peak + 1, size=(width, fan_out))
        assert np.array_equal(
            reduce_columns_fa_count(counts),
            reduce_columns_fa_count_reference(counts),
        )

    def test_flat_tall_histogram(self):
        counts = np.full((10, 3), 1025, dtype=np.int64)
        assert np.array_equal(
            reduce_columns_fa_count(counts),
            reduce_columns_fa_count_reference(counts),
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_population_fa_matches_per_model(self, seed):
        rng = np.random.default_rng(seed)
        sizes = tuple(int(v) for v in rng.integers(2, 16, size=3))
        models = [
            ApproximateMLP.random(
                Topology(sizes), ApproxConfig(), rng, mask_density=float(rng.random())
            )
            for _ in range(int(rng.integers(1, 7)))
        ]
        areas = fast_population_fa_count(models)
        assert [int(a) for a in areas] == [fast_mlp_fa_count(m) for m in models]


def random_objectives(rng, n):
    # Rounding produces plenty of exact ties, the hard case for sweeps.
    decimals = int(rng.integers(0, 4))
    scale = float(rng.choice([1.0, 10.0, 1000.0]))
    return np.round(rng.random((n, 2)) * scale, decimals)


class TestNonDominatedSortEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        objectives = random_objectives(rng, n)
        violations = None
        if rng.random() < 0.5:
            violations = np.maximum(0.0, rng.random(n) - 0.6)
        fast = fast_non_dominated_sort(objectives, violations)
        reference = fast_non_dominated_sort_reference(
            objectives, None if violations is None else list(violations)
        )
        assert fast == reference

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_matrix_matches_scalar_relation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 15))
        objectives = random_objectives(rng, n)
        violations = np.maximum(0.0, rng.random(n) - 0.5)
        matrix = constrained_domination_matrix(objectives, violations)
        for i in range(n):
            for j in range(n):
                expected = i != j and constrained_dominates(
                    objectives[i], objectives[j], violations[i], violations[j]
                )
                assert bool(matrix[i, j]) == expected

    def test_empty_population(self):
        assert fast_non_dominated_sort(np.zeros((0, 2))) == []

    def test_violation_length_mismatch(self):
        with pytest.raises(ValueError):
            fast_non_dominated_sort(np.zeros((3, 2)), violations=[0.0])


class TestParetoSweepEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_pareto_front_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 60))
        objectives = random_objectives(rng, max(n, 1))[:n]
        points = [
            ParetoPoint(float(e), float(a), 1.0 - float(e), payload=i)
            for i, (e, a) in enumerate(objectives)
        ]
        fast = pareto_front(points)
        reference = pareto_front_reference(points)
        # Same points, same order, same representatives for duplicates.
        assert [p.payload for p in fast] == [p.payload for p in reference]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_archive_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        max_size = int(rng.integers(1, 20))
        sweep = ParetoArchive(max_size=max_size)
        reference = ParetoArchive(max_size=max_size, reference=True)
        for e, a in random_objectives(rng, int(rng.integers(1, 60))):
            point = ParetoPoint(float(e), float(a), 1.0 - float(e))
            assert sweep.add(point) == reference.add(point)
            assert [(q.error, q.area) for q in sweep.points] == [
                (q.error, q.area) for q in reference.points
            ]

    def test_near_duplicates_collapse(self):
        base = ParetoPoint(0.5, 100.0, 0.5, payload="first")
        close = ParetoPoint(0.5 + 1e-12, 100.0 - 1e-9, 0.5, payload="second")
        front = pareto_front([base, close])
        assert [p.payload for p in front] == ["first"]
        archive = ParetoArchive()
        assert archive.add(base)
        assert not archive.add(close)


@pytest.fixture(scope="module")
def tiny_fitness_setup():
    layout = ChromosomeLayout(Topology((4, 3, 2)), ApproxConfig())
    rng = np.random.default_rng(11)
    inputs = rng.integers(0, 16, size=(40, 4))
    labels = rng.integers(0, 2, size=40)
    return layout, inputs, labels


class TestFitnessCache:
    def test_population_matches_individual_compute(self, tiny_fitness_setup):
        layout, inputs, labels = tiny_fitness_setup
        rng = np.random.default_rng(0)
        population = [layout.random(rng) for _ in range(12)]
        population += [population[0].copy(), population[3].copy()]
        evaluator = FitnessEvaluator(layout, inputs, labels, baseline_accuracy=0.9)
        batch = evaluator.evaluate_population(population)
        for chromosome, values in zip(population, batch):
            assert values == evaluator.compute(chromosome)

    def test_cache_counters(self, tiny_fitness_setup):
        layout, inputs, labels = tiny_fitness_setup
        rng = np.random.default_rng(1)
        population = [layout.random(rng) for _ in range(6)]
        duplicated = population + [c.copy() for c in population]
        evaluator = FitnessEvaluator(layout, inputs, labels)
        evaluator.evaluate_population(duplicated)
        # Counters reflect unique lookups: the 6 in-batch duplicates are
        # folded before the cache is consulted, so they are neither
        # lookups nor hits.
        assert evaluator.evaluations == 6
        assert evaluator.fitness_computations == 6
        assert evaluator.cache_hits == 0
        # A second pass is served entirely from the cache.
        evaluator.evaluate_population(duplicated)
        assert evaluator.evaluations == 12
        assert evaluator.fitness_computations == 6
        assert evaluator.cache_hits == 6
        assert evaluator.evaluations == (
            evaluator.cache_hits + evaluator.fitness_computations
        )

    def test_single_evaluate_uses_cache(self, tiny_fitness_setup):
        layout, inputs, labels = tiny_fitness_setup
        rng = np.random.default_rng(2)
        chromosome = layout.random(rng)
        evaluator = FitnessEvaluator(layout, inputs, labels)
        first = evaluator.evaluate(chromosome)
        second = evaluator.evaluate(chromosome.copy())
        assert first == second
        assert evaluator.cache_hits == 1
        assert evaluator.fitness_computations == 1

    def test_cache_eviction_bound(self, tiny_fitness_setup):
        layout, inputs, labels = tiny_fitness_setup
        rng = np.random.default_rng(3)
        evaluator = FitnessEvaluator(layout, inputs, labels, max_cache_size=4)
        for _ in range(10):
            evaluator.evaluate(layout.random(rng))
        assert len(evaluator._cache) <= 4

    def test_population_survives_mid_batch_eviction(self, tiny_fitness_setup):
        # A cache-hit entry evicted while the batch's new results are
        # being stored must still reach the returned list.
        layout, inputs, labels = tiny_fitness_setup
        rng = np.random.default_rng(5)
        evaluator = FitnessEvaluator(layout, inputs, labels, max_cache_size=3)
        a, b, c, d = (layout.random(rng) for _ in range(4))
        for chromosome in (a, b, c):
            evaluator.evaluate(chromosome)
        results = evaluator.evaluate_population([a, d])
        assert results[0] == evaluator.compute(a)
        assert results[1] == evaluator.compute(d)

    def test_worker_pool_matches_serial(self, tiny_fitness_setup):
        layout, inputs, labels = tiny_fitness_setup
        rng = np.random.default_rng(4)
        population = [layout.random(rng) for _ in range(8)]
        serial = FitnessEvaluator(layout, inputs, labels)
        with FitnessEvaluator(layout, inputs, labels, n_workers=2) as pooled:
            assert pooled.evaluate_population(population) == serial.evaluate_population(
                population
            )

    def test_rejects_bad_parameters(self, tiny_fitness_setup):
        layout, inputs, labels = tiny_fitness_setup
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, inputs, labels, n_workers=-1)
        with pytest.raises(ValueError):
            FitnessEvaluator(layout, inputs, labels, max_cache_size=0)
