"""Tests for the :mod:`repro.lint` engine: scanning, pragmas, graph, runner."""

from pathlib import Path

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import Finding, Project, _parse_pragmas, run_rules
from repro.lint.rules import ALL_RULES, rules_by_id
from repro.lint.rules.rp03_nondeterminism import NondeterminismRule

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def make_project(*roots, **config_kwargs):
    return Project([FIXTURES / root for root in roots], LintConfig(**config_kwargs))


class TestScanning:
    def test_module_names_from_package_structure(self):
        project = make_project("bad_pkg")
        assert "bad_pkg" in project.modules
        assert "bad_pkg.middle" in project.modules
        assert "bad_pkg.serving_zone.query" in project.modules
        assert "bad_pkg.search_zone.trainer" in project.modules
        assert project.modules["bad_pkg"].is_package

    def test_single_file_root(self):
        project = make_project("bad_pkg/rng.py")
        assert list(project.modules) == ["bad_pkg.rng"]

    def test_broken_file_surfaces_as_rp00(self):
        project = make_project("broken")
        assert len(project.broken) == 1
        finding = project.broken[0]
        assert finding.rule == "RP00"
        assert finding.path.endswith("not_python.py")
        assert "does not parse" in finding.message
        findings, _ = run_rules(project, rules=[])
        assert finding in findings


class TestPragmas:
    def test_parse_allow_with_reason(self):
        pragmas = _parse_pragmas("x = 1  # lint: allow(RP03, RP06) -- because\n")
        assert len(pragmas) == 1
        assert pragmas[0].verb == "allow"
        assert pragmas[0].args == ("RP03", "RP06")
        assert pragmas[0].reason == "because"
        assert pragmas[0].line == 1

    def test_parse_oracle_pair(self):
        pragmas = _parse_pragmas("def f():  # lint: oracle-pair(slow_f)\n    pass\n")
        assert pragmas[0].verb == "oracle-pair"
        assert pragmas[0].args == ("slow_f",)
        assert pragmas[0].reason is None

    def test_pragma_only_in_real_comments(self):
        # A pragma-looking substring inside a string literal is not a pragma.
        pragmas = _parse_pragmas('text = "# lint: allow(RP03)"\n')
        assert pragmas == []

    def test_line_and_file_queries(self):
        project = make_project("bad_pkg/suppressed.py")
        source = project.modules["bad_pkg.suppressed"]
        assert source.line_allows("RP03", 7)
        assert not source.line_allows("RP03", 6)
        assert not source.line_allows("RP06", 7)
        assert not source.file_allows("RP03")


class TestImportGraph:
    def test_relative_import_resolved(self):
        project = make_project("clean_pkg")
        edges = project.edges["clean_pkg.pure"]
        assert any(e.target == "clean_pkg.pure.api" for e in edges)

    def test_from_import_of_submodule_adds_precise_edge(self):
        project = make_project("bad_pkg")
        edges = project.edges["bad_pkg.middle"]
        assert any(e.target == "bad_pkg.search_zone.trainer" for e in edges)

    def test_expand_target_includes_ancestor_packages(self):
        project = make_project("bad_pkg")
        expanded = project.expand_target("bad_pkg.search_zone.trainer")
        assert expanded == ["bad_pkg", "bad_pkg.search_zone", "bad_pkg.search_zone.trainer"]

    def test_closure_and_chain(self):
        project = make_project("bad_pkg")
        closure = project.closure(["bad_pkg.serving_zone", "bad_pkg.serving_zone.query"])
        assert "bad_pkg.search_zone.trainer" in closure
        chain = project.chain(closure, "bad_pkg.search_zone.trainer")
        assert chain == [
            "bad_pkg.serving_zone.query",
            "bad_pkg.middle",
            "bad_pkg.search_zone.trainer",
        ]

    def test_type_checking_imports_excluded(self, tmp_path):
        (tmp_path / "mod_a.py").write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import mod_b\n",
            encoding="utf-8",
        )
        (tmp_path / "mod_b.py").write_text("VALUE = 1\n", encoding="utf-8")
        project = Project([tmp_path], LintConfig())
        closure = project.closure(["mod_a"])
        assert "mod_b" not in closure
        closure = project.closure(["mod_a"], include_type_checking=True)
        assert "mod_b" in closure

    def test_function_level_imports_included(self, tmp_path):
        (tmp_path / "mod_a.py").write_text(
            "def late():\n    import mod_b\n    return mod_b\n", encoding="utf-8"
        )
        (tmp_path / "mod_b.py").write_text("VALUE = 1\n", encoding="utf-8")
        project = Project([tmp_path], LintConfig())
        edges = project.edges["mod_a"]
        assert edges and edges[0].function_level
        assert "mod_b" in project.closure(["mod_a"])


class TestFinding:
    def test_format_text_and_hint(self):
        finding = Finding("RP03", "src/x.py", 4, 2, "bad", hint="fix it")
        assert finding.format_text() == "src/x.py:4:2: RP03 error: bad  [hint: fix it]"

    def test_to_dict_omits_missing_hint(self):
        payload = Finding("RP06", "a.py", 1, 0, "msg").to_dict()
        assert payload["rule"] == "RP06"
        assert "hint" not in payload

    def test_fingerprint_is_line_free(self):
        a = Finding("RP03", "a.py", 4, 0, "msg")
        b = Finding("RP03", "a.py", 90, 7, "msg")
        assert a.fingerprint() == b.fingerprint()


class TestRunRules:
    def test_justified_pragma_suppresses_without_rp00(self):
        project = make_project("bad_pkg/suppressed.py")
        findings, stats = run_rules(project, rules=[NondeterminismRule()])
        assert findings == []
        assert stats.suppressed == 1
        assert stats.pragmas == 1

    def test_pragma_discipline_findings(self):
        project = make_project("bad_pkg/pragmas.py")
        findings, stats = run_rules(project, rules=[])
        by_line = {f.line: f for f in findings}
        assert all(f.rule == "RP00" for f in findings)
        assert "unexplained lint pragma allow(RP03)" in by_line[7].message
        assert "unknown lint pragma verb 'frobnicate'" in by_line[11].message
        assert "unknown rule(s) ['RP99']" in by_line[15].message

    def test_unexplained_pragma_still_suppresses_but_is_flagged(self):
        # The RP03 finding on line 7 is suppressed, yet RP00 reports the
        # missing justification — an escape hatch cannot be silent.
        project = make_project("bad_pkg/pragmas.py")
        findings, stats = run_rules(project, rules=[NondeterminismRule()])
        assert stats.suppressed == 1
        assert not any(f.rule == "RP03" and f.line == 7 for f in findings)
        assert any(f.rule == "RP00" and f.line == 7 for f in findings)

    def test_baseline_filters_by_fingerprint(self):
        project = make_project("bad_pkg/rng.py")
        findings, _ = run_rules(project, rules=[NondeterminismRule()])
        assert len(findings) == 5
        baseline = {f.fingerprint() for f in findings}
        filtered, stats = run_rules(
            project, rules=[NondeterminismRule()], baseline=baseline
        )
        assert filtered == []
        assert stats.baseline_skipped == 5

    def test_findings_sorted_by_location(self):
        project = make_project("bad_pkg")
        findings, _ = run_rules(project, rules=[NondeterminismRule()])
        keys = [(f.path, f.line, f.col, f.rule) for f in findings]
        assert keys == sorted(keys)


class TestRuleRegistry:
    def test_all_rules_have_unique_ids(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids)) == 6

    def test_rules_by_id_selects(self):
        (rule,) = rules_by_id(["RP03"])
        assert rule.id == "RP03"

    def test_rules_by_id_rejects_unknown(self):
        with pytest.raises(ValueError):
            rules_by_id(["RP99"])

    def test_rules_by_id_none_returns_full_battery(self):
        assert [r.id for r in rules_by_id(None)] == [r.id for r in ALL_RULES]
