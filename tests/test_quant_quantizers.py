"""Tests for input/weight quantizers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quant.quantizers import (
    InputQuantizer,
    UniformQuantizer,
    quantize_inputs,
    quantize_weights_fixed,
)


class TestUniformQuantizer:
    def test_levels_and_step(self):
        quantizer = UniformQuantizer(bits=4, lo=0.0, hi=1.0)
        assert quantizer.levels == 16
        assert quantizer.max_code == 15
        assert quantizer.step == pytest.approx(1 / 15)

    def test_endpoints_map_to_extremes(self):
        quantizer = UniformQuantizer(bits=4)
        assert quantizer.quantize(np.array([0.0]))[0] == 0
        assert quantizer.quantize(np.array([1.0]))[0] == 15

    def test_out_of_range_saturates(self):
        quantizer = UniformQuantizer(bits=4)
        assert quantizer.quantize(np.array([-0.5]))[0] == 0
        assert quantizer.quantize(np.array([2.0]))[0] == 15

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=4, lo=1.0, hi=0.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=0)

    def test_dequantize_roundtrip_on_grid(self):
        quantizer = UniformQuantizer(bits=3, lo=-1.0, hi=1.0)
        codes = np.arange(8)
        assert np.array_equal(quantizer.quantize(quantizer.dequantize(codes)), codes)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_property_codes_in_range(self, value):
        code = quantize_inputs(np.array([value]), bits=4)[0]
        assert 0 <= code <= 15


class TestInputQuantizer:
    def test_default_bits(self):
        assert InputQuantizer().bits == 4

    def test_quantize_inputs_matches_class(self):
        values = np.linspace(0, 1, 17)
        assert np.array_equal(quantize_inputs(values), InputQuantizer().quantize(values))


class TestWeightQuantization:
    def test_zero_weights(self):
        codes, fmt = quantize_weights_fixed(np.zeros((3, 2)))
        assert np.all(codes == 0)
        assert fmt.total_bits == 8

    def test_max_weight_representable(self):
        weights = np.array([0.5, -0.25, 0.75])
        codes, fmt = quantize_weights_fixed(weights, total_bits=8)
        assert np.all(fmt.representable(codes))
        assert np.allclose(fmt.dequantize(codes), weights, atol=fmt.scale)

    def test_explicit_frac_bits(self):
        weights = np.array([1.0, -1.0])
        codes, fmt = quantize_weights_fixed(weights, total_bits=8, frac_bits=4)
        assert fmt.frac_bits == 4
        assert codes[0] == 16
        assert codes[1] == -16

    def test_large_weights_get_integer_bits(self):
        weights = np.array([5.0, -3.0])
        codes, fmt = quantize_weights_fixed(weights, total_bits=8)
        assert np.allclose(fmt.dequantize(codes), weights, atol=fmt.scale)
