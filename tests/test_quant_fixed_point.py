"""Tests for the fixed-point format substrate."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quant.fixed_point import FixedPointFormat, dequantize_fixed, quantize_fixed


class TestFixedPointFormat:
    def test_basic_properties_q8_7(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=7, signed=True)
        assert fmt.integer_bits == 0
        assert fmt.scale == pytest.approx(1 / 128)
        assert fmt.min_code == -128
        assert fmt.max_code == 127
        assert fmt.min_value == pytest.approx(-1.0)
        assert fmt.max_value == pytest.approx(127 / 128)

    def test_unsigned_format_range(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=0, signed=False)
        assert fmt.min_code == 0
        assert fmt.max_code == 15
        assert fmt.integer_bits == 4

    def test_invalid_total_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=0, frac_bits=0)

    def test_invalid_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=4, frac_bits=-1)

    def test_frac_exceeding_total(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=4, frac_bits=5)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=7)
        codes = fmt.quantize(np.array([-10.0, 10.0]))
        assert codes[0] == fmt.min_code
        assert codes[1] == fmt.max_code

    def test_quantize_rounds_to_nearest(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        assert fmt.quantize(np.array([0.26]))[0] == 4  # 0.25 grid
        assert fmt.quantize(np.array([0.24]))[0] == 4

    def test_dequantize_inverse_on_grid(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=5)
        codes = np.arange(fmt.min_code, fmt.max_code + 1)
        assert np.array_equal(fmt.quantize(fmt.dequantize(codes)), codes)

    def test_roundtrip_error_bounded_by_half_lsb(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=6)
        values = np.linspace(fmt.min_value, fmt.max_value, 101)
        recon = fmt.roundtrip(values)
        assert np.max(np.abs(recon - values)) <= fmt.scale / 2 + 1e-12

    def test_representable(self):
        fmt = FixedPointFormat(total_bits=4, frac_bits=0)
        assert fmt.representable(np.array([0, 7, -8])).all()
        assert not fmt.representable(np.array([8])).any()

    def test_functional_wrappers(self):
        fmt = FixedPointFormat(total_bits=6, frac_bits=2)
        values = np.array([0.5, -1.25])
        codes = quantize_fixed(values, fmt)
        assert np.allclose(dequantize_fixed(codes, fmt), values)

    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_property_quantize_within_bounds(self, total_bits, value):
        fmt = FixedPointFormat(total_bits=total_bits, frac_bits=total_bits // 2)
        code = fmt.quantize(np.array([value]))[0]
        assert fmt.min_code <= code <= fmt.max_code
