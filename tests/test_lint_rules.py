"""Per-rule tests over the fixture packages, plus the CLI and the
static-vs-runtime purity agreement check."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.config import LintConfig, PurityPolicy, SchemaTarget, default_config
from repro.lint.engine import Project, run_rules
from repro.lint.rules import rules_by_id
from repro.lint.rules.rp01_import_purity import ImportPurityRule
from repro.lint.rules.rp02_oracle_pairing import OraclePairingRule
from repro.lint.rules.rp03_nondeterminism import NondeterminismRule
from repro.lint.rules.rp04_schema_version import (
    SchemaVersionRule,
    extract_schema,
    write_golden,
)
from repro.lint.rules.rp05_multiprocessing import MultiprocessingHygieneRule
from repro.lint.rules.rp06_strict_json import StrictJsonRule
from repro.serving.cli import FORBIDDEN_MODULES

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

SCHEMA_TARGET = SchemaTarget(
    module="bad_pkg.schema_mod",
    version_constant="RECORD_SCHEMA_VERSION",
    dataclasses=("Record",),
    constants=("LAYOUT",),
)


def make_project(*roots, **config_kwargs):
    return Project([FIXTURES / root for root in roots], LintConfig(**config_kwargs))


def lint_cli(*args, cwd=ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


class TestRP01ImportPurity:
    def test_deep_chain_detected_and_anchored(self):
        project = make_project(
            "bad_pkg",
            purity_policies=(
                PurityPolicy(
                    zone="bad_pkg.serving_zone", forbidden=("bad_pkg.search_zone",)
                ),
            ),
        )
        findings = list(ImportPurityRule().check(project))
        assert findings
        assert {f.rule for f in findings} == {"RP01"}
        # Both the package __init__ and the trainer module are reached.
        mentioned = {f.message.split(" via ")[0].split()[-1] for f in findings}
        assert mentioned == {"bad_pkg.search_zone", "bad_pkg.search_zone.trainer"}
        for finding in findings:
            assert finding.path.endswith("serving_zone/query.py")
            assert finding.line == 3  # the import that starts the chain
        chain_finding = next(
            f for f in findings if "bad_pkg.search_zone.trainer" in f.message
        )
        assert (
            "bad_pkg.serving_zone.query -> bad_pkg.middle -> "
            "bad_pkg.search_zone.trainer" in chain_finding.message
        )

    def test_clean_zone_passes(self):
        project = make_project(
            "clean_pkg",
            purity_policies=(
                PurityPolicy(zone="clean_pkg.pure", forbidden=("clean_pkg.engine",)),
            ),
        )
        assert list(ImportPurityRule().check(project)) == []


class TestRP02OraclePairing:
    def make(self, *roots):
        return make_project(*roots, tests_root=FIXTURES / "corpus")

    def test_bad_kernels(self):
        findings = list(OraclePairingRule().check(self.make("bad_pkg/kernels.py")))
        by_line = {f.line: f for f in findings}
        assert set(by_line) == {6, 10, 16}
        assert "never reads it" in by_line[6].message  # dead_oracle
        assert "no equivalence test references unverified" in by_line[10].message
        assert "missing_oracle(), which is not defined" in by_line[16].message

    def test_clean_pairings_pass(self):
        assert list(OraclePairingRule().check(self.make("clean_pkg"))) == []


class TestRP03Nondeterminism:
    def test_every_violation_flagged_with_anchor(self):
        findings = list(NondeterminismRule().check(make_project("bad_pkg/rng.py")))
        by_line = {f.line: f for f in findings}
        assert set(by_line) == {11, 15, 19, 23, 27}
        assert "legacy global numpy RNG" in by_line[11].message
        assert "np.random.default_rng() constructed without a seed" in by_line[15].message
        assert "stdlib random.random()" in by_line[19].message
        assert "time.time() reads the wall clock" in by_line[23].message
        assert "datetime.now() reads the wall clock" in by_line[27].message

    def test_clean_module_passes(self):
        assert list(NondeterminismRule().check(make_project("clean_pkg"))) == []


class TestRP04SchemaVersion:
    def make(self, golden_path, update_golden=False):
        return make_project(
            "bad_pkg/schema_mod.py",
            schema_targets=(SCHEMA_TARGET,),
            golden_path=golden_path,
            update_golden=update_golden,
        )

    def test_extract_schema_shapes(self):
        project = self.make(None)
        extracted = extract_schema(project.modules["bad_pkg.schema_mod"], SCHEMA_TARGET)
        assert extracted["version"] == 1
        assert extracted["version_line"] == 5
        assert extracted["shapes"] == {
            "LAYOUT": ["alpha", "beta"],
            "Record": ["name: str", "value: float"],
        }

    def test_wildcard_selects_all_dataclasses(self):
        project = self.make(None)
        target = SchemaTarget(
            module="bad_pkg.schema_mod",
            version_constant="RECORD_SCHEMA_VERSION",
            dataclasses=("*",),
        )
        extracted = extract_schema(project.modules["bad_pkg.schema_mod"], target)
        assert "Record" in extracted["shapes"]

    def test_matching_golden_passes(self, tmp_path):
        golden = tmp_path / "golden.json"
        write_golden(self.make(golden))
        assert list(SchemaVersionRule().check(self.make(golden))) == []

    def test_shape_drift_without_bump(self, tmp_path):
        golden = tmp_path / "golden.json"
        project = self.make(golden)
        write_golden(project)
        payload = json.loads(golden.read_text())
        payload["bad_pkg.schema_mod"]["shapes"]["Record"] = ["name: str"]
        golden.write_text(json.dumps(payload))
        (finding,) = SchemaVersionRule().check(self.make(golden))
        assert finding.line == 5  # the version-constant line
        assert "changed without a RECORD_SCHEMA_VERSION bump" in finding.message
        assert "value: float" in finding.message

    def test_stale_golden_after_bump(self, tmp_path):
        golden = tmp_path / "golden.json"
        write_golden(self.make(golden))
        payload = json.loads(golden.read_text())
        payload["bad_pkg.schema_mod"]["version"] = 0
        golden.write_text(json.dumps(payload))
        (finding,) = SchemaVersionRule().check(self.make(golden))
        assert "golden file is stale" in finding.message

    def test_missing_golden(self, tmp_path):
        (finding,) = SchemaVersionRule().check(self.make(tmp_path / "absent.json"))
        assert "no golden schema recorded" in finding.message
        assert "--update-golden" in finding.hint

    def test_update_golden_writes_and_reports_nothing(self, tmp_path):
        golden = tmp_path / "fresh.json"
        assert list(SchemaVersionRule().check(self.make(golden, update_golden=True))) == []
        assert golden.exists()


class TestRP05MultiprocessingHygiene:
    def test_unpicklable_submits_flagged(self):
        findings = list(
            MultiprocessingHygieneRule().check(make_project("bad_pkg/pools.py"))
        )
        by_line = {f.line: f for f in findings}
        assert set(by_line) == {9, 13, 24, 28}
        assert "is a lambda" in by_line[9].message
        assert "bound method" in by_line[13].message
        assert "nested function" in by_line[24].message
        assert "initializer" in by_line[28].message

    def test_clean_module_passes(self):
        assert list(MultiprocessingHygieneRule().check(make_project("clean_pkg"))) == []


class TestRP06StrictJson:
    def test_unproven_dumps_flagged(self):
        findings = list(StrictJsonRule().check(make_project("bad_pkg/emit.py")))
        by_line = {f.line: f for f in findings}
        assert set(by_line) == {7, 11, 15}
        assert "omits allow_nan=False" in by_line[7].message
        assert "not the literal False" in by_line[11].message
        assert "**kwargs" in by_line[15].message

    def test_strict_call_passes(self):
        findings = list(StrictJsonRule().check(make_project("bad_pkg/emit.py")))
        assert 19 not in {f.line for f in findings}


class TestCleanPackageFullBattery:
    def test_zero_findings(self):
        project = make_project(
            "clean_pkg",
            purity_policies=(
                PurityPolicy(zone="clean_pkg.pure", forbidden=("clean_pkg.engine",)),
            ),
            tests_root=FIXTURES / "corpus",
        )
        findings, stats = run_rules(project, rules_by_id(None))
        assert findings == []
        assert stats.files == 5


class TestCli:
    def test_exit_zero_on_real_src(self):
        result = lint_cli("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 finding(s)" in result.stderr

    def test_json_findings_on_fixtures(self):
        result = lint_cli(
            "tests/lint_fixtures/bad_pkg/rng.py", "--rule", "RP03", "--format", "json"
        )
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["stats"]["rules"] == ["RP03"]
        assert len(payload["findings"]) == 5
        first = payload["findings"][0]
        assert first["rule"] == "RP03"
        assert first["path"].endswith("rng.py")
        assert first["line"] == 11

    def test_purity_zone_override(self):
        result = lint_cli(
            "tests/lint_fixtures/bad_pkg",
            "--rule",
            "RP01",
            "--purity-zone",
            "bad_pkg.serving_zone:bad_pkg.search_zone",
        )
        assert result.returncode == 1
        assert "bad_pkg.search_zone.trainer" in result.stdout

    def test_unknown_rule_is_usage_error(self):
        assert lint_cli("src", "--rule", "RP99").returncode == 2

    def test_missing_path_is_usage_error(self):
        assert lint_cli("no/such/dir").returncode == 2

    def test_list_rules(self):
        result = lint_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in ("RP01", "RP02", "RP03", "RP04", "RP05", "RP06"):
            assert rule_id in result.stdout

    def test_baseline_roundtrip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        written = lint_cli(
            "tests/lint_fixtures/bad_pkg/rng.py",
            "--rule",
            "RP03",
            "--write-baseline",
            str(baseline),
        )
        assert written.returncode == 0
        assert len(json.loads(baseline.read_text())["fingerprints"]) == 5
        replay = lint_cli(
            "tests/lint_fixtures/bad_pkg/rng.py",
            "--rule",
            "RP03",
            "--baseline",
            str(baseline),
        )
        assert replay.returncode == 0
        assert "5 baselined" in replay.stderr


class TestPurityAgreement:
    """RP01 (static closure) and ``--assert-pure`` (runtime probe) agree.

    The static check proves no code path can import a search-time
    module; the runtime probe proves none actually loaded.  Both feed
    off :data:`repro.serving.cli.FORBIDDEN_MODULES`, and the runtime
    import set must be a subset of the static closure — otherwise the
    closure is missing edges and its purity proof is worthless.
    """

    @staticmethod
    def _matches(module, prefixes):
        return any(
            module == p or module.startswith(p + ".") for p in prefixes
        )

    def test_static_closure_contains_runtime_imports_and_both_are_clean(self):
        config = default_config(ROOT)
        project = Project([ROOT / "src"], config)
        zone = sorted(
            m
            for m in project.modules
            if m == "repro.serving" or m.startswith("repro.serving.")
        )
        assert zone, "serving zone not found in src scan"
        closure = set(project.closure(zone))
        dirty = [m for m in closure if self._matches(m, FORBIDDEN_MODULES)]
        assert dirty == [], f"static closure reaches forbidden modules: {dirty}"

        script = (
            "import importlib, json, sys\n"
            "zone = json.loads(sys.argv[1])\n"
            "for module in zone:\n"
            "    importlib.import_module(module)\n"
            "from repro.serving.cli import forbidden_loaded\n"
            "loaded = sorted(n for n in sys.modules\n"
            "                if n == 'repro' or n.startswith('repro.'))\n"
            "print(json.dumps({'forbidden': forbidden_loaded(), 'loaded': loaded}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", script, json.dumps(zone)],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout)
        assert payload["forbidden"] == []
        runtime_only = sorted(set(payload["loaded"]) - closure)
        assert runtime_only == [], (
            "runtime imported modules the static closure missed: "
            f"{runtime_only}"
        )
