"""Tests of the ExperimentSession API and its typed artifacts.

Covers the tentpole guarantees of the session redesign:

* ``run("all")`` trains the per-dataset gradient baseline and the
  hardware-aware GA **exactly once** — experiments share the memoized
  stage graph instead of re-driving the pipeline;
* every experiment's artifact round-trips ``to_json -> from_json ->
  format`` **bit-identically**, and the exported CSV parses;
* artifact **schemas are stable**: the golden files under
  ``tests/golden/`` pin each experiment's columns and display layout,
  so accidental schema drift fails loudly (update the goldens together
  with a conscious ``ARTIFACT_SCHEMA_VERSION`` decision);
* the legacy ``run_<experiment>`` shims delegate to the session (shared
  stages, no retraining) and print identical tables.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path

import pytest

from repro.baselines.gradient import GradientTrainer
from repro.core.trainer import GATrainer
from repro.evaluation.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    Artifact,
    ArtifactError,
)
from repro.experiments.config import ExperimentScale
from repro.experiments.pipeline import DatasetPipeline
from repro.experiments.session import (
    EXPERIMENT_DEFINITIONS,
    EXPERIMENT_ORDER,
    ExperimentSession,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

TINY = ExperimentScale(
    name="tiny-session",
    datasets=("breast_cancer",),
    max_samples=250,
    gradient_epochs=40,
    gradient_restarts=1,
    ga_population=20,
    ga_generations=10,
    max_front_designs=8,
    seed=0,
)


@pytest.fixture(scope="module")
def session_run():
    """One full ``run("all")`` with the trainer entry points counted."""
    ga_calls = []
    grad_calls = []
    ga_orig, grad_orig = GATrainer.train, GradientTrainer.train

    def counting_ga(self, *args, **kwargs):
        ga_calls.append(kwargs)
        return ga_orig(self, *args, **kwargs)

    def counting_grad(self, *args, **kwargs):
        grad_calls.append(kwargs)
        return grad_orig(self, *args, **kwargs)

    GATrainer.train = counting_ga
    GradientTrainer.train = counting_grad
    try:
        session = ExperimentSession(TINY)
        artifacts = session.run("all")
    finally:
        GATrainer.train = ga_orig
        GradientTrainer.train = grad_orig
    return session, artifacts, ga_calls, grad_calls


class TestSharedStages:
    def test_all_experiments_produced(self, session_run):
        _, artifacts, _, _ = session_run
        assert tuple(artifacts) == EXPERIMENT_ORDER
        for artifact in artifacts.values():
            assert len(artifact.rows) >= 1

    def test_gradient_training_runs_exactly_once_per_dataset(self, session_run):
        _, _, _, grad_calls = session_run
        # Table I/II/III, Fig. 4/5 and both ablations all read the one
        # shared gradient-baseline stage.
        assert len(grad_calls) == len(TINY.datasets)

    def test_ga_training_runs_exactly_once_per_stage(self, session_run):
        session, _, ga_calls, _ = session_run
        # Per dataset: 1 shared hardware-aware front (table2 + table3's
        # GA-AxC column + fig4 + fig5 + both ablations' identity
        # variants) + 1 hardware-unaware plain GA (table3's GA column).
        # Plus the four genuinely restricted/altered ablation variants
        # on the ablation dataset.  Nothing trains twice.
        expected = 2 * len(TINY.datasets) + 4
        assert len(ga_calls) == expected
        counts = session.stage_counts()
        for name in TINY.datasets:
            assert counts[("ga_front", name)] == 1
            assert counts[("ga_plain", name)] == 1
            assert counts[("gradient_baseline", name)] == 1

    def test_second_run_retrains_nothing(self, session_run):
        session, first, ga_calls, grad_calls = session_run
        before = (len(ga_calls), len(grad_calls))
        second = session.run("all")
        assert (len(ga_calls), len(grad_calls)) == before
        assert second == first  # artifacts are memoized, not rebuilt

    def test_table3_reports_shared_stage_timings(self, session_run):
        session, artifacts, _, _ = session_run
        row = artifacts["table3"].rows[0]
        result = session.front("breast_cancer")
        assert row["grad_seconds"] == result.baseline.training_seconds
        assert row["ga_axc_seconds"] == result.approximate.training_seconds
        assert row["grad_seconds"] < row["ga_seconds"]

    def test_run_rejects_unknown_experiment(self, session_run):
        session, _, _, _ = session_run
        with pytest.raises(KeyError, match="unknown experiment"):
            session.run(["table2", "table9"])

    def test_custom_loss_reselects_from_memoized_front(self, session_run):
        """A non-default accuracy-loss budget must be honored even after
        the front stage was memoized at the default budget."""
        from repro.evaluation.pareto_analysis import select_design
        from repro.experiments.table2 import build_table2

        session, _, ga_calls, _ = session_run
        before = len(ga_calls)
        rows = build_table2(session, max_accuracy_loss=0.5)
        assert len(ga_calls) == before  # no retraining, selection only
        result = session.front("breast_cancer")
        expected = select_design(
            result.approximate.designs,
            baseline_accuracy=result.baseline.test_accuracy,
            max_accuracy_loss=0.5,
        )
        assert rows[0]["area_cm2"] == expected.area_cm2
        assert rows[0]["accuracy"] == expected.test_accuracy

    def test_prefetch_plan_respects_experiment_scope(self, session_run):
        session, _, _, _ = session_run
        # Ablations read only their fixed dataset's front.
        front, baseline = session._prefetch_plan(["ablation_approx"])
        assert front == ("breast_cancer",) and baseline == ()
        # Baseline-only experiments warm the gradient stage, not the GA.
        front, baseline = session._prefetch_plan(["table1"])
        assert front == () and baseline == TINY.datasets
        # Front experiments subsume their baselines.
        front, baseline = session._prefetch_plan(["table1", "table2"])
        assert front == TINY.datasets and baseline == ()


class TestArtifactRoundTrip:
    def test_json_round_trip_is_bit_identical(self, session_run):
        _, artifacts, _, _ = session_run
        for name, artifact in artifacts.items():
            text = artifact.to_json()
            restored = Artifact.from_json(text)
            assert restored == artifact, name
            assert restored.to_json() == text, name
            assert restored.format() == artifact.format(), name

    def test_export_files_round_trip(self, session_run, tmp_path):
        _, artifacts, _, _ = session_run
        for name, artifact in artifacts.items():
            paths = artifact.save(tmp_path)
            assert [p.name for p in paths] == [f"{name}.json", f"{name}.csv"]
            restored = Artifact.from_json(paths[0].read_text(encoding="utf-8"))
            assert restored == artifact, name

    def test_exported_json_is_strict(self, session_run):
        """No NaN/Infinity literals: the export must parse everywhere."""
        _, artifacts, _, _ = session_run
        for artifact in artifacts.values():
            json.loads(artifact.to_json(), parse_constant=pytest.fail)

    def test_csv_parses_with_full_header(self, session_run):
        _, artifacts, _, _ = session_run
        for name, artifact in artifacts.items():
            parsed = list(csv.reader(io.StringIO(artifact.to_csv())))
            assert parsed[0] == artifact.columns, name
            assert len(parsed) == len(artifact.rows) + 1, name

    def test_format_matches_legacy_formatter(self, session_run):
        """The shims' formatters and Artifact.format print one table."""
        from repro.experiments.runner import EXPERIMENTS

        _, artifacts, _, _ = session_run
        for name, artifact in artifacts.items():
            _, formatter = EXPERIMENTS[name]
            assert artifact.format() == formatter([dict(r) for r in artifact.rows])


class TestSchemaGolden:
    @pytest.mark.parametrize("name", EXPERIMENT_ORDER)
    def test_schema_matches_golden(self, session_run, name):
        _, artifacts, _, _ = session_run
        artifact = artifacts[name]
        golden = json.loads(
            (GOLDEN_DIR / f"{name}.schema.json").read_text(encoding="utf-8")
        )
        produced = {
            "experiment": artifact.experiment,
            "schema_version": artifact.schema_version,
            "columns": sorted(artifact.columns),
            "display": [list(pair) for pair in artifact.display],
        }
        assert produced == golden, (
            f"artifact schema of {name!r} drifted from tests/golden/"
            f"{name}.schema.json; if intentional, regenerate the golden "
            f"and consider bumping ARTIFACT_SCHEMA_VERSION"
        )

    def test_schema_version_is_pinned(self):
        assert ARTIFACT_SCHEMA_VERSION == 1


class TestArtifactUnit:
    def _artifact(self, rows, display=None):
        return Artifact.build(
            "unit", rows, scale="tiny", seed=0, datasets=("d",), display=display
        )

    def test_special_floats_round_trip(self):
        artifact = self._artifact(
            [{"a": float("inf"), "b": float("-inf"), "c": float("nan"), "d": 1.5}]
        )
        text = artifact.to_json()
        json.loads(text, parse_constant=pytest.fail)  # strict JSON
        restored = Artifact.from_json(text)
        assert restored == artifact
        row = restored.rows[0]
        assert row["a"] == math.inf and row["b"] == -math.inf
        assert math.isnan(row["c"]) and row["d"] == 1.5

    def test_numpy_scalars_are_normalized(self):
        import numpy as np

        artifact = self._artifact([{"i": np.int64(3), "f": np.float64(0.5)}])
        assert type(artifact.rows[0]["i"]) is int
        assert type(artifact.rows[0]["f"]) is float

    def test_non_scalar_cell_is_rejected(self):
        with pytest.raises(ArtifactError, match="not a serializable scalar"):
            self._artifact([{"bad": [1, 2, 3]}])

    def test_version_mismatch_is_rejected(self):
        text = self._artifact([{"a": 1}]).to_json()
        payload = json.loads(text)
        payload["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        with pytest.raises(ArtifactError, match="schema version"):
            Artifact.from_json(json.dumps(payload))

    def test_garbage_json_is_rejected(self):
        with pytest.raises(ArtifactError, match="not valid JSON"):
            Artifact.from_json("{nope")

    def test_none_becomes_empty_csv_cell(self):
        artifact = self._artifact([{"a": None, "b": 2}])
        assert artifact.to_csv().splitlines()[1] == ",2"

    def test_auto_display_uses_first_row_keys(self):
        artifact = self._artifact([{"x": 1, "y": 2}])
        assert artifact.display == (("x", "x"), ("y", "y"))

    def test_artifacts_are_hashable_and_set_dedupable(self):
        first = self._artifact([{"a": 1}])
        second = self._artifact([{"a": 1}])
        assert first == second and hash(first) == hash(second)
        assert len({first, second}) == 1


class TestLegacyShims:
    def test_shims_share_one_session_per_pipeline(self):
        """Repeated legacy calls on one pipeline never retrain."""
        from repro.experiments.table2 import run_table2

        ga_calls = []
        ga_orig = GATrainer.train

        def counting(self, *args, **kwargs):
            ga_calls.append(kwargs)
            return ga_orig(self, *args, **kwargs)

        GATrainer.train = counting
        try:
            pipeline = DatasetPipeline(TINY)
            first = run_table2(pipeline)
            trained = len(ga_calls)
            second = run_table2(pipeline)
        finally:
            GATrainer.train = ga_orig
        assert trained == 1  # one shared hardware-aware front
        assert len(ga_calls) == trained
        assert first == second
        assert ExperimentSession.from_pipeline(pipeline) is ExperimentSession.coerce(
            pipeline
        )


class TestParallelPrefetch:
    def test_dataset_workers_warm_stages_concurrently(self):
        scale = ExperimentScale(
            name="tiny-parallel",
            datasets=("breast_cancer", "redwine"),
            max_samples=200,
            gradient_epochs=30,
            gradient_restarts=1,
            ga_population=16,
            ga_generations=4,
            max_front_designs=6,
            seed=0,
        )
        session = ExperimentSession(scale)
        artifacts = session.run(["table2"], dataset_workers=2)
        rows = artifacts["table2"].rows
        assert [row["dataset"] for row in rows] == ["breast_cancer", "redwine"]
        counts = session.stage_counts()
        for name in scale.datasets:
            assert counts[("ga_front", name)] == 1

    def test_parallel_results_match_serial(self):
        scale = ExperimentScale(
            name="tiny-parallel-eq",
            datasets=("breast_cancer", "redwine"),
            max_samples=200,
            gradient_epochs=30,
            gradient_restarts=1,
            ga_population=16,
            ga_generations=4,
            max_front_designs=6,
            seed=0,
        )
        serial = ExperimentSession(scale).run(["table2"])["table2"]
        parallel = ExperimentSession(scale).run(["table2"], dataset_workers=2)["table2"]
        assert parallel == serial


class TestRunnerExport:
    def test_export_dir_writes_json_and_csv(self, tmp_path, monkeypatch, capsys):
        from repro.experiments import runner
        from repro.experiments.config import SCALES

        monkeypatch.setitem(SCALES, "tiny-session", TINY)
        out = tmp_path / "exports"
        assert (
            runner.main(
                [
                    "--experiment",
                    "table2",
                    "--scale",
                    "tiny-session",
                    "--export-dir",
                    str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "=== table2" in printed and "[export]" in printed
        restored = Artifact.from_json(
            (out / "table2.json").read_text(encoding="utf-8")
        )
        assert restored.experiment == "table2"
        assert restored.scale == "tiny-session"
        assert (out / "table2.csv").exists()
