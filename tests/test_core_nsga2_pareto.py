"""Tests for the NSGA-II machinery and Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nsga2 import (
    constrained_dominates,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    nsga2_sort_key,
)
from repro.core.pareto import ParetoArchive, ParetoPoint, hypervolume, pareto_front


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert not dominates(np.array([2.0, 2.0]), np.array([1.0, 1.0]))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(np.array([1.0, 1.0]), np.array([1.0, 1.0]))

    def test_trade_off_points_do_not_dominate(self):
        assert not dominates(np.array([1.0, 3.0]), np.array([2.0, 2.0]))
        assert not dominates(np.array([2.0, 2.0]), np.array([1.0, 3.0]))

    def test_constrained_dominance_feasibility_first(self):
        good = np.array([10.0, 10.0])
        bad = np.array([0.0, 0.0])
        assert constrained_dominates(good, bad, violation_a=0.0, violation_b=1.0)
        assert not constrained_dominates(bad, good, violation_a=1.0, violation_b=0.0)

    def test_constrained_dominance_among_infeasible(self):
        a = np.array([5.0, 5.0])
        b = np.array([1.0, 1.0])
        assert constrained_dominates(a, b, violation_a=0.1, violation_b=0.5)

    def test_constrained_dominance_among_feasible_is_pareto(self):
        assert constrained_dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))


class TestNonDominatedSort:
    def test_simple_fronts(self):
        objectives = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0], [3.0, 3.0]])
        fronts = fast_non_dominated_sort(objectives)
        assert set(fronts[0]) == {0, 2}
        assert set(fronts[1]) == {1}
        assert set(fronts[2]) == {3}

    def test_all_points_assigned_once(self):
        rng = np.random.default_rng(0)
        objectives = rng.random((30, 2))
        fronts = fast_non_dominated_sort(objectives)
        flattened = [i for front in fronts for i in front]
        assert sorted(flattened) == list(range(30))

    def test_infeasible_points_pushed_back(self):
        objectives = np.array([[1.0, 1.0], [5.0, 5.0]])
        fronts = fast_non_dominated_sort(objectives, violations=[1.0, 0.0])
        assert fronts[0] == [1]

    def test_violation_length_mismatch(self):
        with pytest.raises(ValueError):
            fast_non_dominated_sort(np.zeros((3, 2)), violations=[0.0])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_property_front0_is_non_dominated(self, seed):
        rng = np.random.default_rng(seed)
        objectives = rng.random((20, 2))
        front0 = fast_non_dominated_sort(objectives)[0]
        for i in front0:
            assert not any(dominates(objectives[j], objectives[i]) for j in range(20) if j != i)


class TestCrowding:
    def test_boundary_points_infinite(self):
        objectives = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distance = crowding_distance(objectives)
        assert np.isinf(distance[0]) and np.isinf(distance[3])
        assert np.isfinite(distance[1]) and np.isfinite(distance[2])

    def test_small_front_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0], [2.0, 1.0]]))))

    def test_empty_front(self):
        assert crowding_distance(np.zeros((0, 2))).shape == (0,)

    def test_sort_key_shapes(self):
        objectives = np.random.default_rng(0).random((12, 2))
        ranks, crowding = nsga2_sort_key(objectives)
        assert ranks.shape == (12,) and crowding.shape == (12,)
        assert ranks.min() == 0


class TestParetoFrontUtilities:
    def make_points(self):
        return [
            ParetoPoint(error=0.1, area=100, accuracy=0.9),
            ParetoPoint(error=0.2, area=50, accuracy=0.8),
            ParetoPoint(error=0.3, area=20, accuracy=0.7),
            ParetoPoint(error=0.25, area=80, accuracy=0.75),  # dominated
        ]

    def test_pareto_front_filters_dominated(self):
        front = pareto_front(self.make_points())
        assert len(front) == 3
        assert all(p.area != 80 for p in front)

    def test_pareto_front_sorted_by_area(self):
        areas = [p.area for p in pareto_front(self.make_points())]
        assert areas == sorted(areas)

    def test_duplicates_collapsed(self):
        points = [ParetoPoint(0.1, 10, 0.9), ParetoPoint(0.1, 10, 0.9)]
        assert len(pareto_front(points)) == 1

    def test_hypervolume_positive_and_monotonic(self):
        points = self.make_points()
        reference = (1.0, 200.0)
        hv_all = hypervolume(points, reference)
        hv_one = hypervolume(points[:1], reference)
        assert hv_all > hv_one > 0

    def test_hypervolume_empty_outside_reference(self):
        assert hypervolume([ParetoPoint(2.0, 300, 0.0)], (1.0, 200.0)) == 0.0

    def test_archive_keeps_non_dominated_only(self):
        archive = ParetoArchive(max_size=10)
        assert archive.add(ParetoPoint(0.5, 50, 0.5))
        assert not archive.add(ParetoPoint(0.6, 60, 0.4))  # dominated
        assert archive.add(ParetoPoint(0.4, 60, 0.6))
        assert len(archive) == 2

    def test_archive_removes_newly_dominated(self):
        archive = ParetoArchive()
        archive.add(ParetoPoint(0.5, 50, 0.5))
        archive.add(ParetoPoint(0.3, 30, 0.7))  # dominates the first
        assert len(archive) == 1
        assert archive.points[0].area == 30

    def test_archive_thinning_respects_max_size(self):
        archive = ParetoArchive(max_size=5)
        for i in range(30):
            archive.add(ParetoPoint(error=1.0 - i * 0.01, area=float(i), accuracy=i * 0.01))
        assert len(archive) <= 5

    def test_archive_extend_counts_kept(self):
        archive = ParetoArchive()
        kept = archive.extend([ParetoPoint(0.5, 50, 0.5), ParetoPoint(0.6, 60, 0.4)])
        assert kept == 1

    def test_archive_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ParetoArchive(max_size=0)
