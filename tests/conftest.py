"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP
from repro.approx.topology import Topology
from repro.datasets.preprocessing import normalize_01, stratified_split
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_classification


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_topology() -> Topology:
    """A tiny MLP topology (4 inputs, 3 hidden, 2 classes)."""
    return Topology((4, 3, 2))


@pytest.fixture
def approx_config() -> ApproxConfig:
    """Default approximation config (4-bit inputs, 8-bit activations)."""
    return ApproxConfig()


@pytest.fixture
def random_mlp(small_topology, approx_config, rng) -> ApproximateMLP:
    """A random approximate MLP on the small topology."""
    return ApproximateMLP.random(small_topology, approx_config, rng)


@pytest.fixture
def tiny_dataset(rng):
    """A small, easily separable synthetic classification dataset.

    Returns (x_train_q, y_train, x_test_q, y_test) with 4-bit quantized
    inputs, matching the ``small_topology`` fixture (4 features, 2 classes).
    """
    from repro.quant.quantizers import quantize_inputs

    spec = SyntheticSpec(
        num_features=4, num_classes=2, num_samples=200, class_sep=3.0, noise=0.15
    )
    features, labels = generate_synthetic_classification(spec, rng)
    features = normalize_01(features)
    x_train, y_train, x_test, y_test = stratified_split(features, labels, 0.7, rng)
    return (
        quantize_inputs(x_train),
        y_train,
        quantize_inputs(x_test),
        y_test,
    )
