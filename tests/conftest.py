"""Shared fixtures for the test suite.

Besides the plain value fixtures, this module hosts the *builder
factories* (``make_neuron``, ``make_mlp``, ``random_population``) that
several hardware/RTL/synthesis test modules previously each re-declared
locally.  They are session-scoped fixtures returning plain functions —
the factories themselves are stateless (the caller passes the rng), and
session scope keeps them usable inside ``hypothesis`` ``@given`` bodies
without tripping the function-scoped-fixture health check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP
from repro.approx.neuron import ApproximateNeuron
from repro.approx.topology import Topology
from repro.core.chromosome import ChromosomeLayout
from repro.datasets.preprocessing import normalize_01, stratified_split
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_classification


def build_neuron(rng, fan_in=4, input_bits=4, max_exponent=4, bias_bound=64):
    """A random :class:`ApproximateNeuron` (signs drawn from {-1, +1})."""
    return ApproximateNeuron(
        masks=rng.integers(0, 1 << input_bits, size=fan_in),
        signs=rng.choice([-1, 1], size=fan_in),
        exponents=rng.integers(0, max_exponent + 1, size=fan_in),
        bias=int(rng.integers(-bias_bound, bias_bound)),
        input_bits=input_bits,
    )


def build_mlp(rng, sizes=(4, 3, 2), config=None, mask_density=0.5):
    """A random :class:`ApproximateMLP` on ``sizes``."""
    return ApproximateMLP.random(
        Topology(sizes), config or ApproxConfig(), rng, mask_density=mask_density
    )


def build_population(rng, sizes, size, config=None):
    """Layout-decoded random population (the GA's candidate shape)."""
    layout = ChromosomeLayout(Topology(sizes), config or ApproxConfig())
    return [layout.decode(layout.random(rng)) for _ in range(size)]


@pytest.fixture(scope="session")
def make_neuron():
    """Factory fixture: ``make_neuron(rng, fan_in=..., input_bits=...)``."""
    return build_neuron


@pytest.fixture(scope="session")
def make_mlp():
    """Factory fixture: ``make_mlp(rng, sizes=..., mask_density=...)``."""
    return build_mlp


@pytest.fixture(scope="session")
def random_population():
    """Factory fixture: ``random_population(rng, sizes, size)``."""
    return build_population


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_topology() -> Topology:
    """A tiny MLP topology (4 inputs, 3 hidden, 2 classes)."""
    return Topology((4, 3, 2))


@pytest.fixture
def approx_config() -> ApproxConfig:
    """Default approximation config (4-bit inputs, 8-bit activations)."""
    return ApproxConfig()


@pytest.fixture
def random_mlp(small_topology, approx_config, rng) -> ApproximateMLP:
    """A random approximate MLP on the small topology."""
    return ApproximateMLP.random(small_topology, approx_config, rng)


@pytest.fixture
def tiny_dataset(rng):
    """A small, easily separable synthetic classification dataset.

    Returns (x_train_q, y_train, x_test_q, y_test) with 4-bit quantized
    inputs, matching the ``small_topology`` fixture (4 features, 2 classes).
    """
    from repro.quant.quantizers import quantize_inputs

    spec = SyntheticSpec(
        num_features=4, num_classes=2, num_samples=200, class_sep=3.0, noise=0.15
    )
    features, labels = generate_synthetic_classification(spec, rng)
    features = normalize_01(features)
    x_train, y_train, x_test, y_test = stratified_split(features, labels, 0.7, rng)
    return (
        quantize_inputs(x_train),
        y_train,
        quantize_inputs(x_test),
        y_test,
    )
