"""Tests of the island-model parallel GA engine (:mod:`repro.core.islands`).

The determinism contract is tested at two levels:

* ``n_islands=1`` must be **bit-identical** to the plain
  :class:`~repro.core.trainer.GATrainer` (same draws, same front, same
  history) — the ``slow=``-style oracle of the island engine;
* for ``n_islands>1``, a fixed seed and island count must give an
  identical merged front regardless of worker scheduling — asserted by
  comparing the in-process serial executor (``parallel=False``) against
  the real process pool, whose completion order the OS controls.

Process-pool cases keep populations tiny (the CI box may have a single
core); the scaling benchmark lives in ``benchmarks/test_island_ga.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.cache import CachePool, EvaluationCache
from repro.core.islands import (
    IslandConfig,
    IslandGAResult,
    IslandGATrainer,
    make_trainer,
)
from repro.core.trainer import GAConfig, GATrainer

TOPOLOGY = (4, 3, 2)


@pytest.fixture(scope="module")
def tiny_split():
    rng = np.random.default_rng(11)
    inputs = rng.integers(0, 16, size=(40, 4)).astype(np.int64)
    labels = rng.integers(0, 2, size=40).astype(np.int64)
    return inputs, labels


def island_config(**overrides):
    defaults = dict(
        population_size=16,
        generations=4,
        seed=3,
        n_islands=2,
        migration_interval=2,
        migration_size=2,
    )
    defaults.update(overrides)
    return GAConfig(**defaults)


def front_key(result):
    return [
        (point.error, point.area, point.accuracy, tuple(np.asarray(point.payload).tolist()))
        for point in result.pareto_points
    ]


def strip_variable_fields(history):
    """History with wall-clock and scheduling-dependent counters zeroed.

    ``duration_s`` is wall-clock; ``cache_hits``/``fitness_computations``
    (and their sum's split) depend on which worker process served which
    island — both are documented as non-deterministic across executors.
    """
    return [
        dataclasses.replace(stats, duration_s=0.0, cache_hits=0, fitness_computations=0)
        for stats in history
    ]


class TestIslandConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            IslandConfig(n_islands=0)
        with pytest.raises(ValueError):
            IslandConfig(migration_interval=0)
        with pytest.raises(ValueError):
            IslandConfig(migration_size=-1)

    def test_ga_config_validates_island_partition(self):
        with pytest.raises(ValueError):
            # 10 // 3 = 3 members per island: below the NSGA-II minimum.
            GAConfig(population_size=10, n_islands=3)
        with pytest.raises(ValueError):
            # Migration would replace more than half of an island.
            GAConfig(population_size=16, n_islands=2, migration_size=5)

    def test_population_partition(self):
        config = IslandConfig(n_islands=3)
        assert config.island_population_sizes(14) == [5, 5, 4]
        assert sum(config.island_population_sizes(20)) == 20

    def test_from_ga_config(self):
        config = IslandConfig.from_ga_config(island_config(n_islands=4, population_size=32))
        assert config.n_islands == 4
        assert config.migration_interval == 2

    def test_make_trainer_dispatch(self):
        assert isinstance(make_trainer(TOPOLOGY, ga_config=island_config()), IslandGATrainer)
        assert type(make_trainer(TOPOLOGY, ga_config=GAConfig())) is GATrainer


class TestSingleIslandOracle:
    def test_one_island_bit_identical_to_gatrainer(self, tiny_split):
        inputs, labels = tiny_split
        config = GAConfig(population_size=16, generations=4, seed=3)
        base = GATrainer(TOPOLOGY, ga_config=config).train(inputs, labels)
        islands = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels
        )
        assert isinstance(islands, IslandGAResult)
        assert islands.n_islands == 1
        assert islands.migrations == 0
        assert front_key(islands) == front_key(base)
        # Same draws → same per-generation trajectory (only wall-clock
        # may differ; with one island even the counters are identical).
        assert [dataclasses.replace(s, duration_s=0.0) for s in islands.history] == [
            dataclasses.replace(s, duration_s=0.0) for s in base.history
        ]
        assert islands.evaluations == base.evaluations


class TestMultiIslandDeterminism:
    def test_serial_executor_is_deterministic(self, tiny_split):
        inputs, labels = tiny_split
        config = island_config()
        first = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels
        )
        second = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels
        )
        assert front_key(first) == front_key(second)
        assert strip_variable_fields(first.history) == strip_variable_fields(second.history)

    def test_process_pool_matches_serial_executor(self, tiny_split):
        """Worker scheduling must not affect the merged front."""
        inputs, labels = tiny_split
        config = island_config()
        serial = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels
        )
        pooled = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=True).train(
            inputs, labels
        )
        assert front_key(pooled) == front_key(serial)
        assert len(pooled.island_histories) == 2
        for island in range(2):
            assert strip_variable_fields(
                pooled.island_histories[island]
            ) == strip_variable_fields(serial.island_histories[island])

    def test_migration_happens_and_result_structure(self, tiny_split):
        inputs, labels = tiny_split
        config = island_config(generations=6, migration_interval=2)
        result = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels
        )
        # 3 epochs of 2 generations; no migration after the final epoch.
        assert result.migrations == 2
        assert len(result.history) == 6
        assert len(result.island_histories) == 2
        assert all(len(h) == 6 for h in result.island_histories)
        # Merged counters are the sums of the island counters.
        last = result.history[-1]
        assert last.evaluations == sum(
            h[-1].evaluations for h in result.island_histories
        )
        assert result.evaluations == last.evaluations

    def test_generation_durations_are_recorded(self, tiny_split):
        inputs, labels = tiny_split
        result = IslandGATrainer(
            TOPOLOGY, ga_config=island_config(), parallel=False
        ).train(inputs, labels)
        assert len(result.generation_seconds) == 4
        assert all(duration > 0.0 for duration in result.generation_seconds)


class TestMigrationMechanics:
    def test_ring_migration_moves_elites(self):
        from repro.core.fitness import FitnessValues
        from repro.core.islands import _IslandState, _migrate

        def values(error, area):
            return FitnessValues(
                accuracy=1.0 - error, error=error, area=area, constraint_violation=0.0
            )

        # Island 0 holds the globally best member (error 0.0), island 1
        # the worst (error 0.9); after one ring step island 1 must have
        # imported island 0's elite and island 0 island 1's best.
        state0 = _IslandState(
            index=0,
            target_size=4,
            rng_state={},
            population=np.arange(8, dtype=np.int64).reshape(4, 2),
            fitnesses=[values(0.0, 1.0), values(0.2, 1.0), values(0.3, 1.0), values(0.4, 1.0)],
        )
        state1 = _IslandState(
            index=1,
            target_size=4,
            rng_state={},
            population=np.arange(100, 108, dtype=np.int64).reshape(4, 2),
            fitnesses=[values(0.5, 1.0), values(0.6, 1.0), values(0.7, 1.0), values(0.9, 1.0)],
        )
        _migrate([state0, state1], migration_size=1, area_objective=True)
        # Island 1 imported island 0's best (error 0.0) over its worst.
        assert any(fit.error == 0.0 for fit in state1.fitnesses)
        assert not any(fit.error == 0.9 for fit in state1.fitnesses)
        assert any((row == [0, 1]).all() for row in state1.population)
        # Island 0 imported island 1's best (error 0.5) over its worst.
        assert any(fit.error == 0.5 for fit in state0.fitnesses)
        assert not any(fit.error == 0.4 for fit in state0.fitnesses)

    def test_zero_migration_size_disables_migration(self, tiny_split):
        inputs, labels = tiny_split
        config = island_config(migration_size=0)
        result = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels
        )
        assert result.migrations == 0


class TestCachePooling:
    def test_warm_pool_recomputes_nothing(self, tiny_split, tmp_path):
        """Second run against a warm shared pool: zero fitness computations."""
        inputs, labels = tiny_split
        config = island_config()
        pool_dir = tmp_path / "pool"

        cold_cache = EvaluationCache()
        cold = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels, cache=cold_cache, pool_dir=pool_dir
        )
        assert cold.history[-1].fitness_computations > 0
        assert list(pool_dir.glob(f"*{CachePool.SEGMENT_SUFFIX}"))

        warm_cache = EvaluationCache()
        warm = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels, cache=warm_cache, pool_dir=pool_dir
        )
        last = warm.history[-1]
        assert last.fitness_computations == 0
        assert last.cache_hits == last.evaluations
        assert front_key(warm) == front_key(cold)

    def test_warm_pool_recomputes_nothing_across_processes(self, tiny_split, tmp_path):
        inputs, labels = tiny_split
        config = island_config()
        pool_dir = tmp_path / "pool"
        IslandGATrainer(TOPOLOGY, ga_config=config, parallel=False).train(
            inputs, labels, cache=EvaluationCache(), pool_dir=pool_dir
        )
        warm = IslandGATrainer(TOPOLOGY, ga_config=config, parallel=True).train(
            inputs, labels, cache=EvaluationCache(), pool_dir=pool_dir
        )
        assert warm.history[-1].fitness_computations == 0

    def test_parent_cache_receives_island_work(self, tiny_split, tmp_path):
        """The coordinator merges pooled fitness values back into `cache`."""
        inputs, labels = tiny_split
        cache = EvaluationCache()
        result = IslandGATrainer(
            TOPOLOGY, ga_config=island_config(), parallel=False
        ).train(inputs, labels, cache=cache, pool_dir=tmp_path / "pool")
        assert len(cache.fitness) >= result.history[-1].fitness_computations
        # The merged front's decoded models were cached in the parent.
        with_payload = [p for p in result.pareto_points if p.payload is not None]
        assert len(cache.models) >= len(with_payload) > 0

    def test_pool_dir_is_optional(self, tiny_split):
        inputs, labels = tiny_split
        cache = EvaluationCache()
        result = IslandGATrainer(
            TOPOLOGY, ga_config=island_config(), parallel=False
        ).train(inputs, labels, cache=cache)
        assert len(result.pareto_points) >= 1


class TestPooledModelCacheFix:
    def test_pooled_fitness_run_populates_model_cache(self, tiny_split):
        """`n_workers>1` keeps decoded models in the workers; the parent
        must decode-and-cache the final front once (the satellite fix)."""
        inputs, labels = tiny_split
        cache = EvaluationCache()
        config = GAConfig(population_size=12, generations=2, seed=0, n_workers=2)
        result = GATrainer(TOPOLOGY, ga_config=config).train(inputs, labels, cache=cache)
        with_payload = [p for p in result.pareto_points if p.payload is not None]
        assert len(with_payload) > 0
        layout_key = EvaluationCache.layout_key(result.layout)
        for point in with_payload:
            key = (layout_key, EvaluationCache.genome_key(np.asarray(point.payload)))
            assert key in cache.models
