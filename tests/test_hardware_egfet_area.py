"""Tests for the EGFET library, CSD encoding and peripheral area models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hardware.area import (
    argmax_cell_counts,
    constant_multiplier_columns,
    csd_encode,
    csd_nonzero_digits,
    exact_neuron_adder_cost,
    exact_neuron_columns,
    merge_cell_counts,
    qrelu_cell_counts,
    register_cell_counts,
)
from repro.hardware.egfet import (
    MIN_VOLTAGE,
    NOMINAL_VOLTAGE,
    CellSpec,
    default_egfet_library,
)


class TestCsdEncoding:
    @given(st.integers(min_value=-(2**15), max_value=2**15))
    def test_property_csd_reconstructs_value(self, value):
        digits = csd_encode(value)
        assert sum(d * (1 << p) for p, d in digits) == value

    @given(st.integers(min_value=-(2**15), max_value=2**15))
    def test_property_no_adjacent_nonzero_digits(self, value):
        positions = sorted(p for p, _ in csd_encode(value))
        assert all(b - a >= 2 for a, b in zip(positions, positions[1:]))

    def test_known_encodings(self):
        assert csd_nonzero_digits(0) == 0
        assert csd_nonzero_digits(1) == 1
        assert csd_nonzero_digits(7) == 2   # 8 - 1
        assert csd_nonzero_digits(255) == 2  # 256 - 1

    def test_csd_digits_never_more_than_binary_ones(self):
        for value in range(256):
            assert csd_nonzero_digits(value) <= max(bin(value).count("1"), 1)


class TestExactNeuronColumns:
    def test_multiplier_columns_width_check(self):
        with pytest.raises(ValueError):
            constant_multiplier_columns(255, input_bits=4, width=4)

    def test_single_weight_column_count(self):
        columns = constant_multiplier_columns(1, input_bits=4, width=10)
        assert columns.sum() == 4

    def test_zero_weight_contributes_nothing(self):
        columns = exact_neuron_columns([0, 0], input_bits=4, bias_code=0)
        assert columns.sum() == 0

    def test_larger_weights_cost_more(self):
        cheap = exact_neuron_adder_cost([1, 1, 1], input_bits=4)
        expensive = exact_neuron_adder_cost([85, 85, 85], input_bits=4)  # many CSD digits
        assert expensive.total_full_adders > cheap.total_full_adders

    def test_bias_included(self):
        without = exact_neuron_columns([3], input_bits=4, bias_code=0).sum()
        with_bias = exact_neuron_columns([3], input_bits=4, bias_code=255).sum()
        assert with_bias > without


class TestEgfetLibrary:
    def test_default_library_cells(self):
        library = default_egfet_library()
        for cell in ("INV", "NAND2", "XOR2", "FA", "HA", "DFF", "MUX2"):
            spec = library.cell(cell)
            assert isinstance(spec, CellSpec)
            assert spec.area_cm2 > 0 and spec.power_mw > 0 and spec.delay_ms > 0

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            default_egfet_library().cell("NAND17")

    def test_fa_is_several_gate_equivalents(self):
        library = default_egfet_library()
        assert 5 < library.gate_equivalents("FA") < 12

    def test_power_density_matches_baseline_ratio(self):
        # Table I shows ~3.3-4.2 mW/cm2; the library is calibrated inside
        # that window.
        library = default_egfet_library()
        spec = library.cell("FA")
        assert 3.0 <= spec.power_mw / spec.area_cm2 <= 4.5

    def test_voltage_power_scaling_quadratic(self):
        library = default_egfet_library()
        assert library.voltage_power_factor(1.0) == pytest.approx(1.0)
        assert library.voltage_power_factor(0.6) == pytest.approx(0.36)

    def test_voltage_below_minimum_rejected(self):
        library = default_egfet_library()
        with pytest.raises(ValueError):
            library.voltage_power_factor(0.3)
        with pytest.raises(ValueError):
            library.power("FA", voltage=-1.0)

    def test_delay_increases_at_low_voltage(self):
        library = default_egfet_library()
        assert library.delay("FA", voltage=MIN_VOLTAGE) > library.delay("FA", voltage=NOMINAL_VOLTAGE)

    def test_area_and_power_scale_with_count(self):
        library = default_egfet_library()
        assert library.area("FA", 10) == pytest.approx(10 * library.area("FA"))
        assert library.power("FA", 10) == pytest.approx(10 * library.power("FA"))

    def test_cellspec_rejects_negative(self):
        with pytest.raises(ValueError):
            CellSpec(area_cm2=-1, power_mw=0, delay_ms=0)


class TestPeripheralCounts:
    def test_qrelu_counts_scale_with_excess_bits(self):
        small = qrelu_cell_counts(acc_bits=9, shift=0, out_bits=8)
        large = qrelu_cell_counts(acc_bits=16, shift=0, out_bits=8)
        assert large["OR2"] > small["OR2"]

    def test_qrelu_rejects_bad_out_bits(self):
        with pytest.raises(ValueError):
            qrelu_cell_counts(8, 0, 0)

    def test_argmax_single_class_is_free(self):
        assert argmax_cell_counts(1, 10) == {}

    def test_argmax_scales_with_classes(self):
        two = sum(argmax_cell_counts(2, 10).values())
        ten = sum(argmax_cell_counts(10, 10).values())
        assert ten > two

    def test_argmax_rejects_zero_classes(self):
        with pytest.raises(ValueError):
            argmax_cell_counts(0, 8)

    def test_register_counts(self):
        assert register_cell_counts(40, 2) == {"DFF": 42.0}

    def test_merge_cell_counts(self):
        merged = merge_cell_counts({"FA": 2.0}, {"FA": 3.0, "INV": 1.0})
        assert merged == {"FA": 5.0, "INV": 1.0}
