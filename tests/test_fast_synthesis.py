"""Equivalence and cache-sharing tests for the batched synthesis engine.

The vectorized engine in :mod:`repro.hardware.fast_synthesis` must be
*bit-identical* to the scalar analyzers in
:mod:`repro.hardware.synthesis` (retained as the ``slow=True`` oracle):
every randomized case below compares whole :class:`HardwareReport`
dataclasses — area, power, delay, cell counts and area breakdown — with
exact equality, across topologies, bit-widths, voltages and the
registered-I/O variant.  The second half covers the shared
:class:`~repro.core.cache.EvaluationCache`: true-LRU eviction order and
the end-to-end guarantee that a pipeline run performs zero redundant
decode/forward/synthesis for genomes already seen by the GA stage.
"""

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.approx.topology import Topology
from repro.core.cache import EvaluationCache, LRUCache
from repro.core.chromosome import ChromosomeLayout
from repro.core.fitness import FitnessEvaluator
from repro.evaluation.pareto_analysis import evaluate_front
from repro.experiments.config import ExperimentScale
from repro.experiments.pipeline import DatasetPipeline
from repro.hardware.adder_tree import count_adders_from_columns
from repro.hardware.fast_synthesis import (
    fast_synthesize_exact_mlp,
    reduce_columns_adder_costs,
    synthesize_approximate_population,
    synthesize_exact_population,
)
from repro.hardware.synthesis import (
    synthesize_approximate_mlp,
    synthesize_exact_mlp,
)


# ----------------------------------------------------------------------
# Shared 3:2 reduction
# ----------------------------------------------------------------------
class TestReduceColumnsAdderCosts:
    @pytest.mark.parametrize("use_half_adders", [False, True])
    @pytest.mark.parametrize("include_final_cpa", [False, True])
    def test_matches_scalar_reducer(self, use_half_adders, include_final_cpa):
        rng = np.random.default_rng(0)
        for trial in range(20):
            width = int(rng.integers(1, 24))
            n = int(rng.integers(1, 30))
            counts = rng.integers(0, 40, size=(width, n))
            fa, ha, cpa, stages = reduce_columns_adder_costs(
                counts,
                use_half_adders=use_half_adders,
                include_final_cpa=include_final_cpa,
            )
            for j in range(n):
                cost = count_adders_from_columns(
                    counts[:, j],
                    use_half_adders=use_half_adders,
                    include_final_cpa=include_final_cpa,
                )
                assert fa[j] == cost.full_adders, (trial, j)
                assert ha[j] == cost.half_adders, (trial, j)
                assert cpa[j] == cost.cpa_full_adders, (trial, j)
                assert stages[j] == cost.reduction_stages, (trial, j)

    def test_mixed_depths_do_not_interfere(self):
        # One already-reduced tree next to a deep one: the shared sweep
        # must leave the finished tree untouched.
        counts = np.array([[1, 30], [2, 30], [0, 30]], dtype=np.int64)
        fa, ha, cpa, stages = reduce_columns_adder_costs(counts)
        shallow = count_adders_from_columns(
            counts[:, 0], use_half_adders=True, include_final_cpa=True
        )
        deep = count_adders_from_columns(
            counts[:, 1], use_half_adders=True, include_final_cpa=True
        )
        assert (fa[0], ha[0], cpa[0], stages[0]) == (
            shallow.full_adders,
            shallow.half_adders,
            shallow.cpa_full_adders,
            shallow.reduction_stages,
        )
        assert (fa[1], ha[1], cpa[1], stages[1]) == (
            deep.full_adders,
            deep.half_adders,
            deep.cpa_full_adders,
            deep.reduction_stages,
        )

    def test_rejects_negative_and_non_matrix(self):
        with pytest.raises(ValueError):
            reduce_columns_adder_costs(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            reduce_columns_adder_costs(np.array([[1], [-1]]))


# ----------------------------------------------------------------------
# Approximate MLPs
# ----------------------------------------------------------------------
class TestApproximateEquivalence:
    @pytest.mark.parametrize(
        "sizes", [(4, 3, 2), (6, 4, 3), (5, 2), (16, 5, 10), (3, 3, 3, 2)]
    )
    def test_population_matches_scalar_oracle(self, sizes, random_population):
        rng = np.random.default_rng(hash(sizes) % (2**32))
        mlps = random_population(rng, sizes, 6)
        fast = synthesize_approximate_population(mlps)
        for mlp, report in zip(mlps, fast):
            assert report == synthesize_approximate_mlp(mlp, slow=True)

    @pytest.mark.parametrize("voltage", [1.0, 0.8, 0.6])
    @pytest.mark.parametrize("include_registers", [False, True])
    def test_operating_points(self, voltage, include_registers, random_population):
        rng = np.random.default_rng(5)
        mlps = random_population(rng, (6, 4, 3), 5)
        fast = synthesize_approximate_population(
            mlps, voltage=voltage, include_registers=include_registers
        )
        for mlp, report in zip(mlps, fast):
            assert report == synthesize_approximate_mlp(
                mlp,
                voltage=voltage,
                include_registers=include_registers,
                slow=True,
            )

    def test_default_path_delegates_to_fast_engine(self, random_population):
        rng = np.random.default_rng(6)
        (mlp,) = random_population(rng, (4, 3, 2), 1)
        assert synthesize_approximate_mlp(mlp) == synthesize_approximate_mlp(
            mlp, slow=True
        )

    def test_clock_period_is_passed_through(self, random_population):
        rng = np.random.default_rng(7)
        (mlp,) = random_population(rng, (4, 3, 2), 1)
        report = synthesize_approximate_population([mlp], clock_period_ms=250.0)[0]
        assert report.clock_period_ms == pytest.approx(250.0)

    def test_empty_and_heterogeneous_inputs(self, random_population):
        assert synthesize_approximate_population([]) == []
        rng = np.random.default_rng(8)
        a = random_population(rng, (4, 3, 2), 1)
        b = random_population(rng, (5, 3, 2), 1)
        with pytest.raises(ValueError):
            synthesize_approximate_population(a + b)


# ----------------------------------------------------------------------
# Exact bespoke MLPs
# ----------------------------------------------------------------------
def _random_exact_job(rng):
    num_layers = int(rng.integers(1, 4))
    sizes = [int(rng.integers(2, 8)) for _ in range(num_layers + 1)]
    weight_codes = [
        rng.integers(-127, 128, size=(sizes[i], sizes[i + 1]))
        for i in range(num_layers)
    ]
    bias_codes = [
        rng.integers(-5000, 5001, size=(sizes[i + 1],)) for i in range(num_layers)
    ]
    input_bits = [int(rng.integers(2, 6))] + [8] * (num_layers - 1)
    shifts = [int(rng.integers(0, 6)) for _ in range(num_layers)]
    use_shifts = bool(rng.integers(0, 2))
    return {
        "weight_codes": weight_codes,
        "bias_codes": bias_codes,
        "input_bits_per_layer": input_bits,
        "activation_bits": 8,
        "activation_shifts": shifts if use_shifts else None,
    }


class TestExactEquivalence:
    def test_randomized_jobs_match_scalar_oracle(self):
        rng = np.random.default_rng(11)
        for trial in range(10):
            job = _random_exact_job(rng)
            voltage = float(rng.choice([1.0, 0.9, 0.7]))
            include_registers = bool(rng.integers(0, 2))
            fast = fast_synthesize_exact_mlp(
                voltage=voltage, include_registers=include_registers, **job
            )
            slow = synthesize_exact_mlp(
                voltage=voltage, include_registers=include_registers, slow=True, **job
            )
            assert fast == slow, trial

    def test_heterogeneous_batch_with_per_job_voltages(self):
        rng = np.random.default_rng(12)
        jobs = [_random_exact_job(rng) for _ in range(5)]
        voltages = [1.0, 0.8, 0.7, 0.9, 0.6]
        reports = synthesize_exact_population(jobs, voltage=voltages)
        for job, voltage, report in zip(jobs, voltages, reports):
            assert report == synthesize_exact_mlp(voltage=voltage, slow=True, **job)

    def test_voltage_vector_must_align(self):
        rng = np.random.default_rng(13)
        jobs = [_random_exact_job(rng) for _ in range(2)]
        with pytest.raises(ValueError):
            synthesize_exact_population(jobs, voltage=[1.0])

    def test_misaligned_job_rejected(self):
        job = {
            "weight_codes": [np.ones((3, 2), dtype=np.int64)] * 2,
            "bias_codes": [np.zeros(2, dtype=np.int64)],
            "input_bits_per_layer": [4, 8],
        }
        with pytest.raises(ValueError):
            synthesize_exact_population([job])

    def test_default_exact_path_delegates_to_fast_engine(self):
        rng = np.random.default_rng(15)
        job = _random_exact_job(rng)
        assert synthesize_exact_mlp(**job) == synthesize_exact_mlp(slow=True, **job)


# ----------------------------------------------------------------------
# Batched front evaluation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_ga_result():
    from repro.core.trainer import GAConfig, GATrainer

    rng = np.random.default_rng(21)
    inputs = rng.integers(0, 16, size=(60, 4))
    labels = rng.integers(0, 2, size=60)
    trainer = GATrainer(
        (4, 3, 2), ga_config=GAConfig(population_size=12, generations=3, seed=0)
    )
    result = trainer.train(inputs, labels)
    return result, inputs, labels


class TestEvaluateFrontBatching:
    def test_batched_front_matches_scalar_oracle(self, tiny_ga_result):
        result, inputs, labels = tiny_ga_result
        fast = evaluate_front(result, inputs, labels, clock_period_ms=200.0)
        slow = evaluate_front(result, inputs, labels, clock_period_ms=200.0, slow=True)
        assert fast == slow

    def test_cache_reuse_returns_identical_designs(self, tiny_ga_result):
        result, inputs, labels = tiny_ga_result
        cache = EvaluationCache()
        first = evaluate_front(result, inputs, labels, cache=cache)
        misses_after_first = cache.reports.misses
        second = evaluate_front(result, inputs, labels, cache=cache)
        assert second == first
        # The second pass is served entirely from the cache: no new
        # report misses, no new accuracy misses.
        assert cache.reports.misses == misses_after_first
        assert cache.reports.hits >= len(first)

    def test_custom_library_bypasses_report_cache(self, tiny_ga_result):
        from dataclasses import replace

        from repro.hardware.egfet import default_egfet_library

        result, inputs, labels = tiny_ga_result
        cache = EvaluationCache()
        default_designs = evaluate_front(result, inputs, labels, cache=cache)
        # A re-scaled library must not be served stale default-library
        # reports from the shared cache.
        library = default_egfet_library()
        doubled = replace(
            library,
            cells={
                name: replace(spec, area_cm2=spec.area_cm2 * 2)
                for name, spec in library.cells.items()
            },
        )
        custom_designs = evaluate_front(
            result, inputs, labels, cache=cache, library=doubled
        )
        for base, custom in zip(default_designs, custom_designs):
            assert custom.area_cm2 == pytest.approx(2 * base.area_cm2)


# ----------------------------------------------------------------------
# LRU cache semantics (satellite: FIFO -> true LRU)
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_hit_refreshes_recency_and_eviction_order(self):
        cache = LRUCache(max_size=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        # Touch the oldest entry: under FIFO it would still be evicted
        # first; under true LRU the untouched "b" goes first.
        assert cache.get("a") == 1
        assert cache.keys() == ["b", "c", "a"]
        cache.put("d", 4)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        cache.put("e", 5)
        assert "c" not in cache
        assert cache.keys() == ["a", "d", "e"]

    def test_counters_and_bound(self):
        cache = LRUCache(max_size=2)
        assert cache.get("missing") is None
        cache.put("x", 1)
        assert cache.get("x") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)
        cache.put("y", 2)
        cache.put("z", 3)
        assert len(cache) == 2
        with pytest.raises(ValueError):
            LRUCache(max_size=0)

    def test_fitness_evaluator_memo_is_lru(self):
        rng = np.random.default_rng(31)
        layout = ChromosomeLayout(Topology((4, 3, 2)), ApproxConfig())
        inputs = rng.integers(0, 16, size=(20, 4))
        labels = rng.integers(0, 2, size=20)
        evaluator = FitnessEvaluator(layout, inputs, labels, max_cache_size=3)
        chromosomes = [layout.random(rng) for _ in range(4)]
        hot = chromosomes[0]
        evaluator.evaluate(hot)
        evaluator.evaluate(chromosomes[1])
        evaluator.evaluate(chromosomes[2])
        # Refresh the hot genome, then insert a fourth: the hot genome
        # must survive (FIFO would evict it, being the oldest insert).
        evaluator.evaluate(hot)
        evaluator.evaluate(chromosomes[3])
        hits_before = evaluator.cache_hits
        evaluator.evaluate(hot)
        assert evaluator.cache_hits == hits_before + 1
        # The least recently *used* entry was evicted instead: looking
        # chromosomes[1] up again forces a recomputation.
        computations_before = evaluator.fitness_computations
        evaluator.evaluate(chromosomes[1])
        assert evaluator.fitness_computations == computations_before + 1

    def test_shared_cache_isolates_evaluator_contexts(self):
        # Cached fitness values embed the feasibility constraint, so two
        # evaluators with different baselines sharing one cache must not
        # serve each other's entries.
        rng = np.random.default_rng(32)
        layout = ChromosomeLayout(Topology((4, 3, 2)), ApproxConfig())
        inputs = rng.integers(0, 16, size=(20, 4))
        labels = rng.integers(0, 2, size=20)
        chromosome = layout.random(rng)
        shared = EvaluationCache()
        constrained = FitnessEvaluator(
            layout, inputs, labels, baseline_accuracy=1.5, cache=shared
        )
        unconstrained = FitnessEvaluator(layout, inputs, labels, cache=shared)
        first = constrained.evaluate(chromosome)
        second = unconstrained.evaluate(chromosome)
        # An impossible baseline makes every candidate infeasible; the
        # unconstrained evaluator must not inherit that violation.
        assert first.constraint_violation > 0.0
        assert second.constraint_violation == 0.0
        assert unconstrained.cache_hits == 0


# ----------------------------------------------------------------------
# End-to-end cache sharing across pipeline stages
# ----------------------------------------------------------------------
def _tiny_scale(datasets):
    return ExperimentScale(
        name="tiny-test",
        datasets=datasets,
        max_samples=160,
        gradient_epochs=8,
        gradient_restarts=1,
        ga_population=10,
        ga_generations=3,
        max_front_designs=8,
    )


class TestPipelineCacheSharing:
    def test_front_stage_reuses_ga_work(self):
        pipeline = DatasetPipeline(_tiny_scale(("breast_cancer",)))
        result = pipeline.approximate("breast_cancer")
        approx = result.approximate
        assert approx is not None and approx.cache is not None
        cache = approx.cache
        # Zero redundant decode: every front genome was decoded by the
        # GA stage and served from the shared model cache.
        assert cache.models.misses == 0
        assert cache.models.hits >= len(approx.designs) > 0
        # Every report was synthesized exactly once (no report existed
        # before the front stage, so every lookup missed then filled).
        assert cache.reports.hits == 0
        assert cache.reports.misses == len(approx.designs)

        # A later reporting stage re-requesting the front is served
        # entirely from the cache: zero redundant forward/synthesis.
        x_test, y_test = result.dataset.quantized_test()
        again = evaluate_front(
            approx.ga_result,
            x_test,
            y_test,
            clock_period_ms=result.spec.clock_period_ms,
            max_designs=pipeline.scale.max_front_designs,
            cache=cache,
        )
        assert again == approx.designs
        assert cache.models.misses == 0
        assert cache.reports.misses == len(approx.designs)

    def test_pendigits_uses_registry_clock_period(self):
        from repro.datasets.registry import clock_period_for

        assert clock_period_for("pendigits") == pytest.approx(250.0)
        pipeline = DatasetPipeline(_tiny_scale(("pendigits",)))
        result = pipeline.approximate("pendigits")
        assert result.baseline.report.clock_period_ms == pytest.approx(250.0)
        assert result.approximate is not None
        for design in result.approximate.designs:
            assert design.report.clock_period_ms == pytest.approx(250.0)
