"""Tests for the dataset substrate (synthetic generation, preprocessing, registry)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.dataset import Dataset, DatasetSplit
from repro.datasets.preprocessing import normalize_01, stratified_split
from repro.datasets.registry import (
    DATASET_SPECS,
    available_datasets,
    get_spec,
    load_dataset,
)
from repro.datasets.synthetic import SyntheticSpec, generate_synthetic_classification


class TestPreprocessing:
    def test_normalize_to_unit_interval(self, rng):
        features = rng.normal(size=(50, 3)) * 10 + 5
        normalized = normalize_01(features)
        assert normalized.min() >= 0.0 and normalized.max() <= 1.0
        assert normalized.min(axis=0) == pytest.approx(np.zeros(3))
        assert normalized.max(axis=0) == pytest.approx(np.ones(3))

    def test_normalize_constant_column(self):
        features = np.ones((10, 2))
        assert not np.isnan(normalize_01(features)).any()

    def test_normalize_with_reference_clips(self, rng):
        train = rng.random((20, 2))
        test = train * 3
        normalized = normalize_01(test, reference=train)
        assert normalized.max() <= 1.0

    def test_normalize_rejects_1d(self):
        with pytest.raises(ValueError):
            normalize_01(np.zeros(5))

    def test_stratified_split_preserves_class_ratio(self, rng):
        labels = np.array([0] * 70 + [1] * 30)
        features = rng.random((100, 2))
        x_train, y_train, x_test, y_test = stratified_split(features, labels, 0.7, rng)
        assert len(y_train) + len(y_test) == 100
        assert np.mean(y_train == 0) == pytest.approx(0.7, abs=0.05)
        assert np.mean(y_test == 0) == pytest.approx(0.7, abs=0.05)

    def test_stratified_split_no_sample_lost(self, rng):
        labels = rng.integers(0, 4, size=200)
        features = rng.random((200, 5))
        x_train, y_train, x_test, y_test = stratified_split(features, labels, 0.6, rng)
        assert len(y_train) + len(y_test) == 200

    def test_stratified_split_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            stratified_split(np.zeros((4, 2)), np.zeros(4), 1.5, rng)

    def test_stratified_split_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            stratified_split(np.zeros((4, 2)), np.zeros(5), 0.7, rng)

    def test_stratified_split_default_rng_is_deterministic(self, rng):
        # Regression (lint RP03): the unseeded fallback generator made
        # the default split silently differ run to run.
        labels = rng.integers(0, 3, size=120)
        features = rng.random((120, 4))
        first = stratified_split(features, labels, 0.7)
        second = stratified_split(features, labels, 0.7)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)


class TestSyntheticGeneration:
    def test_shapes_and_ranges(self, rng):
        spec = SyntheticSpec(num_features=6, num_classes=3, num_samples=120)
        features, labels = generate_synthetic_classification(spec, rng)
        assert features.shape == (120, 6)
        assert labels.shape == (120,)
        assert features.min() >= 0.0 and features.max() <= 1.0
        assert set(np.unique(labels)).issubset(set(range(3)))

    def test_reproducible_with_seed(self):
        spec = SyntheticSpec(num_features=4, num_classes=2, num_samples=50)
        a = generate_synthetic_classification(spec, np.random.default_rng(5))
        b = generate_synthetic_classification(spec, np.random.default_rng(5))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_default_rng_is_deterministic(self):
        # Regression (lint RP03): generating without an explicit rng
        # used to draw a fresh OS-entropy generator every call.
        spec = SyntheticSpec(num_samples=60, num_features=4, num_classes=3)
        x1, y1 = generate_synthetic_classification(spec)
        x2, y2 = generate_synthetic_classification(spec)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_class_priors_respected(self, rng):
        spec = SyntheticSpec(
            num_features=4, num_classes=2, num_samples=4000, class_priors=(0.9, 0.1)
        )
        _, labels = generate_synthetic_classification(spec, rng)
        assert np.mean(labels == 0) == pytest.approx(0.9, abs=0.03)

    def test_separable_data_is_learnable(self, rng):
        spec = SyntheticSpec(num_features=4, num_classes=2, num_samples=300, class_sep=4.0, noise=0.1)
        features, labels = generate_synthetic_classification(spec, rng)
        # A nearest-centroid rule should do well on well-separated data.
        centroids = np.stack([features[labels == c].mean(axis=0) for c in range(2)])
        predictions = np.argmin(
            ((features[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        assert np.mean(predictions == labels) > 0.9

    def test_label_noise_reduces_consistency(self, rng):
        clean_spec = SyntheticSpec(num_features=4, num_classes=2, num_samples=500, label_noise=0.0)
        noisy_spec = SyntheticSpec(num_features=4, num_classes=2, num_samples=500, label_noise=0.4)
        clean = generate_synthetic_classification(clean_spec, np.random.default_rng(1))
        noisy = generate_synthetic_classification(noisy_spec, np.random.default_rng(1))
        assert not np.array_equal(clean[1], noisy[1])

    def test_ordinal_noise_moves_to_neighbours(self, rng):
        spec = SyntheticSpec(
            num_features=3, num_classes=5, num_samples=100, label_noise=0.0, ordinal=True
        )
        features, labels = generate_synthetic_classification(spec, rng)
        assert labels.min() >= 0 and labels.max() <= 4

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_features=0, num_classes=2, num_samples=10)
        with pytest.raises(ValueError):
            SyntheticSpec(num_features=2, num_classes=1, num_samples=10)
        with pytest.raises(ValueError):
            SyntheticSpec(num_features=2, num_classes=2, num_samples=10, label_noise=1.0)
        with pytest.raises(ValueError):
            SyntheticSpec(num_features=2, num_classes=2, num_samples=10, class_priors=(0.9, 0.2))


class TestDatasetContainers:
    def test_split_quantization(self, rng):
        split = DatasetSplit(features=rng.random((20, 3)), labels=rng.integers(0, 2, 20))
        quantized = split.quantized(bits=4)
        assert quantized.min() >= 0 and quantized.max() <= 15
        assert split.num_samples == 20 and split.num_features == 3

    def test_split_validation(self, rng):
        with pytest.raises(ValueError):
            DatasetSplit(features=rng.random(10), labels=np.zeros(10))
        with pytest.raises(ValueError):
            DatasetSplit(features=rng.random((10, 2)), labels=np.zeros(9))

    def test_dataset_class_distribution(self, rng):
        train = DatasetSplit(features=rng.random((80, 3)), labels=np.array([0] * 60 + [1] * 20))
        test = DatasetSplit(features=rng.random((20, 3)), labels=np.array([0] * 15 + [1] * 5))
        dataset = Dataset(name="toy", train=train, test=test, num_classes=2)
        distribution = dataset.class_distribution()
        assert distribution == pytest.approx([0.75, 0.25])


class TestRegistry:
    def test_five_datasets_registered(self):
        assert available_datasets() == sorted(
            ["breast_cancer", "cardio", "pendigits", "redwine", "whitewine"]
        )

    def test_specs_match_table1_topologies(self):
        assert DATASET_SPECS["breast_cancer"].topology == (10, 3, 2)
        assert DATASET_SPECS["cardio"].topology == (21, 3, 3)
        assert DATASET_SPECS["pendigits"].topology == (16, 5, 10)
        assert DATASET_SPECS["redwine"].topology == (11, 2, 6)
        assert DATASET_SPECS["whitewine"].topology == (11, 4, 7)

    def test_clock_periods(self):
        assert get_spec("pendigits").clock_period_ms == 250.0
        assert get_spec("breast_cancer").clock_period_ms == 200.0

    def test_aliases_and_short_names(self):
        assert get_spec("BC").name == "breast_cancer"
        assert get_spec("red-wine").name == "redwine"
        assert get_spec("WW").name == "whitewine"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            get_spec("mnist")

    def test_load_dataset_shapes(self):
        dataset = load_dataset("breast_cancer", seed=0, num_samples=200)
        assert dataset.num_features == 10
        assert dataset.num_classes == 2
        assert dataset.train.num_samples + dataset.test.num_samples == 200
        assert dataset.train.num_samples > dataset.test.num_samples

    def test_load_dataset_deterministic(self):
        a = load_dataset("redwine", seed=3, num_samples=150)
        b = load_dataset("redwine", seed=3, num_samples=150)
        assert np.array_equal(a.train.features, b.train.features)
        assert np.array_equal(a.test.labels, b.test.labels)

    def test_load_dataset_different_seeds_differ(self):
        a = load_dataset("cardio", seed=1, num_samples=150)
        b = load_dataset("cardio", seed=2, num_samples=150)
        assert not np.array_equal(a.train.features, b.train.features)

    @settings(max_examples=5, deadline=None)
    @given(st.sampled_from(sorted(DATASET_SPECS)))
    def test_property_all_datasets_loadable(self, name):
        dataset = load_dataset(name, seed=0, num_samples=120)
        spec = get_spec(name)
        assert dataset.num_features == spec.num_features
        assert dataset.num_classes == spec.num_classes
