def broken(:
    this file deliberately does not parse
