"""Known-good fixture package: the full lint battery finds nothing here."""
