"""The pure query-time zone of the clean fixture package."""

from .api import emit, paired_kernel, seeded_draw

__all__ = ["emit", "paired_kernel", "seeded_draw"]
