"""Clean module: seeded RNG, strict JSON, verified oracle pairings."""

import json

import numpy as np


def seeded_draw(seed):
    rng = np.random.default_rng(seed)
    return float(rng.random())


def paired_kernel(values, slow=False):
    if slow:
        total = 0.0
        for value in values:
            total += value
        return total
    return float(np.sum(np.asarray(values)))


def fast_norm(values):  # lint: oracle-pair(slow_norm)
    return float(np.sqrt(np.sum(np.square(np.asarray(values)))))


def slow_norm(values):
    total = 0.0
    for value in values:
        total += value * value
    return total ** 0.5


def emit(payload):
    return json.dumps(payload, allow_nan=False)
