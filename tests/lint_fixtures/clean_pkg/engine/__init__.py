"""Search-time zone the pure zone must never reach (and does not)."""
