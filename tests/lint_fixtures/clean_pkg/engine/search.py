"""Forbidden target for the clean package's purity policy."""

STATE = "search-time"


def run_search():
    return STATE
