"""RP02 corpus for the fixtures (never collected: no test_ prefix)."""


def check_paired_kernel(paired_kernel):
    assert paired_kernel([1.0, 2.0]) == paired_kernel([1.0, 2.0], slow=True)


def check_norm_pair(fast_norm, slow_norm):
    assert fast_norm([3.0, 4.0]) == slow_norm([3.0, 4.0])
