"""RP01 fixture: the purity breach is three modules deep."""

from bad_pkg.middle import helper


def lookup():
    return helper()
