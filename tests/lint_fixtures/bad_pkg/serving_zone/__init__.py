"""The fixture's "pure" zone — which illegally reaches the search zone."""
