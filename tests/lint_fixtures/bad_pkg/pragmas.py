"""RP00 fixtures: malformed or unexplained pragmas."""

import time


def stamp():
    return time.time()  # lint: allow(RP03)


def other():
    return 1  # lint: frobnicate(RP03) -- no such verb


def typo():
    return 2  # lint: allow(RP99) -- no such rule id
