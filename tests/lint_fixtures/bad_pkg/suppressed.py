"""A justified pragma: the finding suppresses cleanly, RP00 stays quiet."""

import time


def stamp():
    return time.time()  # lint: allow(RP03) -- fixture: demonstrates a justified exemption
