"""RP06 fixtures: json emitters that are not provably strict."""

import json


def loose(payload):
    return json.dumps(payload)


def explicit_true(payload):
    return json.dumps(payload, allow_nan=True)


def hidden(payload, **kwargs):
    return json.dumps(payload, **kwargs)


def strict(payload):
    return json.dumps(payload, allow_nan=False)
