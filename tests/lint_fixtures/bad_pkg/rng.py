"""RP03 fixtures: every call below is a determinism violation."""

import random
import time
from datetime import datetime

import numpy as np


def legacy_draw():
    return np.random.rand(3)


def unseeded():
    return np.random.default_rng()


def stdlib_draw():
    return random.random()


def stamp():
    return time.time()


def born():
    return datetime.now()
