"""RP02 fixtures: broken oracle pairings."""

import numpy as np


def dead_oracle(values, slow=False):
    return float(np.sum(np.asarray(values)))


def unverified(values, slow=False):
    if slow:
        return sum(values)
    return float(np.sum(np.asarray(values)))


def fast_sum(values):  # lint: oracle-pair(missing_oracle)
    return float(np.sum(np.asarray(values)))
