"""RP05 fixtures: unpicklable callables crossing a process pool."""

from concurrent.futures import ProcessPoolExecutor


class Runner:
    def run(self, items):
        with ProcessPoolExecutor(max_workers=2) as pool:
            return [pool.submit(lambda x: x + 1, item) for item in items]

    def run_bound(self, items):
        with ProcessPoolExecutor() as pool:
            return list(pool.map(self._step, items))

    def _step(self, item):
        return item


def run_nested(items):
    def step(item):
        return item * 2

    with ProcessPoolExecutor() as pool:
        return [pool.submit(step, item) for item in items]


def run_with_initializer(items):
    with ProcessPoolExecutor(initializer=lambda: None) as pool:
        return list(pool.map(len, items))
