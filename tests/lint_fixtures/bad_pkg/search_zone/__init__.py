"""The forbidden search-time zone of the bad fixture package."""
