"""Search-time module the pure zone must never reach."""


def train():
    return "search-time"
