"""RP04 fixture: a version-stamped persisted record."""

from dataclasses import dataclass

RECORD_SCHEMA_VERSION = 1

LAYOUT = ("alpha", "beta")


@dataclass
class Record:
    name: str
    value: float
