"""Known-bad fixture package: one module per lint rule, tripping it."""
