"""Innocent-looking hop between the pure zone and the search zone."""

from bad_pkg.search_zone.trainer import train


def helper():
    return train()
