"""Tests for the approximate neuron and layer forward models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.layer import ApproximateLayer, worst_case_shift
from repro.approx.neuron import ApproximateNeuron
from repro.quant.qrelu import QReLU


def simple_neuron(**overrides):
    """A small, hand-checkable neuron."""
    params = dict(
        masks=np.array([0b1111, 0b1010, 0b0000]),
        signs=np.array([1, -1, 1]),
        exponents=np.array([0, 2, 1]),
        bias=5,
        input_bits=4,
    )
    params.update(overrides)
    return ApproximateNeuron(**params)


class TestApproximateNeuron:
    def test_summands_match_equation4(self):
        neuron = simple_neuron()
        x = np.array([[7, 15, 9]])
        # (7 & 15) << 0 = 7 ; -( (15 & 0b1010) << 2 ) = -(10 << 2) = -40 ; masked-out -> 0
        assert np.array_equal(neuron.summands(x), np.array([[7, -40, 0]]))
        assert neuron.accumulate(x)[0] == 7 - 40 + 0 + 5

    def test_forward_without_activation_is_accumulator(self):
        neuron = simple_neuron()
        x = np.array([[1, 2, 3]])
        assert neuron.forward(x)[0] == neuron.accumulate(x)[0]

    def test_forward_with_qrelu(self):
        neuron = simple_neuron(activation=QReLU(shift=0, out_bits=4))
        x = np.array([[15, 0, 0]])
        assert neuron.forward(x)[0] == min(15 + 5, 15)

    def test_zero_mask_removes_connection(self):
        neuron = simple_neuron(masks=np.array([0, 0, 0]))
        x = np.array([[15, 15, 15]])
        assert neuron.accumulate(x)[0] == neuron.bias

    def test_active_connections(self):
        assert simple_neuron().active_connections == 2

    def test_accumulator_bounds(self):
        neuron = simple_neuron()
        assert neuron.max_accumulator() == 15 + 5
        assert neuron.min_accumulator() == -(0b1010 << 2)

    def test_bounds_contain_all_inputs(self, rng):
        neuron = simple_neuron()
        xs = rng.integers(0, 16, size=(200, 3))
        accs = neuron.accumulate(xs)
        assert accs.max() <= neuron.max_accumulator()
        assert accs.min() >= neuron.min_accumulator()

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            simple_neuron(masks=np.array([16, 0, 0]))  # exceeds 4 bits
        with pytest.raises(ValueError):
            simple_neuron(signs=np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            simple_neuron(exponents=np.array([-1, 0, 0]))
        with pytest.raises(ValueError):
            simple_neuron(masks=np.array([[1, 2, 3]]))  # wrong ndim


class TestWorstCaseShift:
    def test_small_layer_no_shift_needed(self):
        # 1 input of 4 bits, max exponent 0: accumulator fits in 8 bits.
        assert worst_case_shift(1, 4, 0, 8) == 0

    def test_larger_layer_requires_shift(self):
        shift = worst_case_shift(fan_in=10, input_bits=4, max_exponent=6, out_bits=8)
        max_acc = 10 * (15 << 6)
        assert (max_acc >> shift) <= 2**8 * 2  # within a factor of the target range
        assert shift > 0

    def test_rejects_non_positive_fan_in(self):
        with pytest.raises(ValueError):
            worst_case_shift(0, 4, 0, 8)


class TestApproximateLayer:
    def make_layer(self, rng, fan_in=5, fan_out=3, input_bits=4, activation=None):
        return ApproximateLayer(
            masks=rng.integers(0, 1 << input_bits, size=(fan_in, fan_out)),
            signs=rng.choice([-1, 1], size=(fan_in, fan_out)),
            exponents=rng.integers(0, 7, size=(fan_in, fan_out)),
            biases=rng.integers(-128, 128, size=fan_out),
            input_bits=input_bits,
            activation=activation,
        )

    def test_layer_matches_per_neuron_forward(self, rng):
        layer = self.make_layer(rng, activation=QReLU(shift=3, out_bits=8))
        x = rng.integers(0, 16, size=(20, 5))
        layer_out = layer.forward(x)
        for j, neuron in enumerate(layer.neurons()):
            assert np.array_equal(layer_out[:, j], neuron.forward(x))

    def test_accumulate_shape_and_1d_input(self, rng):
        layer = self.make_layer(rng)
        assert layer.accumulate(np.zeros(5, dtype=int)).shape == (1, 3)
        assert layer.accumulate(np.zeros((7, 5), dtype=int)).shape == (7, 3)

    def test_accumulate_rejects_wrong_features(self, rng):
        layer = self.make_layer(rng)
        with pytest.raises(ValueError):
            layer.accumulate(np.zeros((4, 9), dtype=int))

    def test_neuron_index_bounds(self, rng):
        layer = self.make_layer(rng)
        with pytest.raises(IndexError):
            layer.neuron(3)

    def test_accumulator_bounds_contain_samples(self, rng):
        layer = self.make_layer(rng)
        x = rng.integers(0, 16, size=(300, 5))
        acc = layer.accumulate(x)
        assert np.all(acc.max(axis=0) <= layer.max_accumulators())
        assert np.all(acc.min(axis=0) >= layer.min_accumulators())

    def test_active_connections_and_retained_bits(self, rng):
        layer = ApproximateLayer(
            masks=np.array([[0b1010, 0], [0b1, 0b1111]]),
            signs=np.ones((2, 2), dtype=int),
            exponents=np.zeros((2, 2), dtype=int),
            biases=np.zeros(2, dtype=int),
            input_bits=4,
        )
        assert layer.active_connections == 3
        assert layer.retained_bits == 2 + 1 + 4

    def test_validation_errors(self, rng):
        with pytest.raises(ValueError):
            ApproximateLayer(
                masks=np.zeros((2, 2)),
                signs=np.ones((2, 2)),
                exponents=np.zeros((2, 2)),
                biases=np.zeros(3),
                input_bits=4,
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_qrelu_layer_output_bounded(self, seed):
        rng = np.random.default_rng(seed)
        layer = self.make_layer(rng, activation=QReLU(shift=2, out_bits=8))
        x = rng.integers(0, 16, size=(10, 5))
        out = layer.forward(x)
        assert out.min() >= 0 and out.max() <= 255
