"""Tests for the QReLU activation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quant.qrelu import QReLU, qrelu


class TestQReLUFunction:
    def test_negative_values_clamp_to_zero(self):
        assert np.all(qrelu(np.array([-5, -1, -1000])) == 0)

    def test_positive_values_pass_through_below_max(self):
        assert np.array_equal(qrelu(np.array([0, 10, 255])), np.array([0, 10, 255]))

    def test_saturation_at_out_bits(self):
        assert qrelu(np.array([300]), out_bits=8)[0] == 255
        assert qrelu(np.array([300]), out_bits=4)[0] == 15

    def test_shift_divides_by_power_of_two(self):
        assert qrelu(np.array([256]), shift=4)[0] == 16

    def test_shift_then_saturate(self):
        assert qrelu(np.array([1 << 16]), shift=4, out_bits=8)[0] == 255

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            qrelu(np.array([1]), shift=-1)

    def test_rejects_non_integer_input(self):
        with pytest.raises(TypeError):
            qrelu(np.array([1.5]))

    def test_rejects_zero_out_bits(self):
        with pytest.raises(ValueError):
            qrelu(np.array([1]), out_bits=0)

    @given(
        st.integers(min_value=-(10**6), max_value=10**6),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=12),
    )
    def test_property_output_in_range(self, value, shift, out_bits):
        result = qrelu(np.array([value]), shift=shift, out_bits=out_bits)[0]
        assert 0 <= result <= (1 << out_bits) - 1


class TestQReLUClass:
    def test_callable_matches_function(self):
        activation = QReLU(shift=2, out_bits=8)
        values = np.arange(-10, 2000, 37)
        assert np.array_equal(activation(values), qrelu(values, shift=2, out_bits=8))

    def test_max_value(self):
        assert QReLU(out_bits=8).max_value == 255
        assert QReLU(out_bits=4).max_value == 15

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            QReLU(shift=-1)
        with pytest.raises(ValueError):
            QReLU(out_bits=0)
