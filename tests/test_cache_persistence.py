"""Tests of the disk-backed evaluation cache (save/load + pipeline wiring).

Covers the snapshot format (versioning, atomic writes, LRU-order
preservation), the corruption tolerance of :meth:`EvaluationCache.load`,
the process-stable split fingerprints, and the end-to-end promise: a
second identical experiment run against the same ``--cache-dir`` is
served almost entirely (> 90 %) from the fitness cache.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.cache import CACHE_FORMAT_VERSION, CachePool, EvaluationCache, SnapshotPolicy
from repro.experiments.config import ExperimentScale
from repro.experiments.pipeline import DatasetPipeline


class TestSnapshotRoundTrip:
    def test_save_and_load_restores_data_sections(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put(("ctx", b"genome-1"), (0.25, 12.0))
        cache.fitness.put(("ctx", b"genome-2"), (0.5, 8.0))
        cache.accuracy.put((("k", b"g"), "split"), 0.875)
        cache.reports.put(("g", 1.0, 200.0, False), {"area": 3.5})
        path = tmp_path / "snap.pkl"
        assert cache.save(path) == 4

        restored = EvaluationCache()
        assert restored.load(path) == 4
        assert restored.fitness.get(("ctx", b"genome-1")) == (0.25, 12.0)
        assert restored.fitness.get(("ctx", b"genome-2")) == (0.5, 8.0)
        assert restored.accuracy.get((("k", b"g"), "split")) == 0.875
        assert restored.reports.get(("g", 1.0, 200.0, False)) == {"area": 3.5}

    def test_models_section_is_not_persisted(self, tmp_path):
        cache = EvaluationCache()
        cache.models.put(("layout", b"g"), object())
        cache.fitness.put(("ctx", b"g"), 1.0)
        path = tmp_path / "snap.pkl"
        assert cache.save(path) == 1
        restored = EvaluationCache()
        restored.load(path)
        assert len(restored.models) == 0
        assert len(restored.fitness) == 1

    def test_load_preserves_lru_order(self, tmp_path):
        cache = EvaluationCache()
        for index in range(5):
            cache.fitness.put(("ctx", index), index)
        cache.fitness.get(("ctx", 0))  # refresh: 0 becomes most recent
        path = tmp_path / "snap.pkl"
        cache.save(path)
        restored = EvaluationCache(max_fitness_entries=2)
        restored.load(path)
        # Entries are stored least-recent first, so a smaller cache
        # keeps the hottest tail: the refreshed 0 and the latest insert.
        assert restored.fitness.keys() == [("ctx", 4), ("ctx", 0)]

    def test_save_creates_parent_directories(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put("k", "v")
        path = tmp_path / "nested" / "dir" / "snap.pkl"
        cache.save(path)
        assert path.exists()

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "snap.pkl"
        first = EvaluationCache()
        first.fitness.put("k", "old")
        first.save(path)
        second = EvaluationCache()
        second.fitness.put("k", "new")
        second.save(path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []  # no temp files left behind
        restored = EvaluationCache()
        restored.load(path)
        assert restored.fitness.get("k") == "new"


class TestSnapshotCompaction:
    """The cache-eviction policy for long-lived ``--cache-dir`` directories."""

    def _entry_count(self, path):
        probe = EvaluationCache()
        return probe.load(path)

    def test_bloated_snapshot_shrinks_to_section_bounds(self, tmp_path):
        """A snapshot accumulated by a large cache shrinks back to the
        section bounds of the cache that saves it next."""
        big = EvaluationCache()
        for index in range(500):
            big.fitness.put(("ctx", index), float(index))
        path = tmp_path / "snap.pkl"
        assert big.save(path) == 500

        small = EvaluationCache(max_fitness_entries=50)
        assert small.load(path) == 500  # read fully, bounded on put
        assert len(small.fitness) == 50
        assert small.save(path) == 50
        assert self._entry_count(path) == 50

    def test_policy_entry_bound_compacts_on_save(self, tmp_path):
        cache = EvaluationCache()
        for index in range(200):
            cache.fitness.put(("ctx", index), float(index))
        cache.fitness.get(("ctx", 0))  # refresh: 0 must survive
        path = tmp_path / "snap.pkl"
        policy = SnapshotPolicy(max_entries_per_section=10)
        assert cache.save(path, policy=policy) == 10
        restored = EvaluationCache()
        restored.load(path)
        # The most recently used entries survive, including the refresh.
        assert ("ctx", 0) in restored.fitness
        assert ("ctx", 199) in restored.fitness
        assert ("ctx", 5) not in restored.fitness

    def test_policy_age_bound_drops_stale_entries(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put("fresh", 1.0)
        cache.fitness.put("stale", 2.0)
        now = cache.fitness.last_used("fresh")
        cache.fitness._stamps["stale"] = now - 1000.0
        path = tmp_path / "snap.pkl"
        policy = SnapshotPolicy(max_age_seconds=500.0)
        assert cache.save(path, policy=policy, now=now) == 1
        restored = EvaluationCache()
        restored.load(path)
        assert restored.fitness.get("fresh") == 1.0
        assert "stale" not in restored.fitness

    def test_stamps_survive_the_snapshot_round_trip(self, tmp_path):
        """Aging keeps working across restarts: the persisted last-used
        time is restored on load, not replaced by load time."""
        cache = EvaluationCache()
        cache.fitness.put("old", 1.0)
        old_stamp = cache.fitness.last_used("old") - 10_000.0
        cache.fitness._stamps["old"] = old_stamp
        path = tmp_path / "snap.pkl"
        cache.save(path)

        restored = EvaluationCache()
        restored.load(path)
        assert restored.fitness.last_used("old") == old_stamp
        # A second save with an age policy can therefore still drop it.
        assert restored.save(path, policy=SnapshotPolicy(max_age_seconds=500.0)) == 0

    def test_policy_byte_bound_shrinks_the_file(self, tmp_path):
        cache = EvaluationCache()
        for index in range(300):
            cache.fitness.put(("ctx", "x" * 50, index), float(index))
        path = tmp_path / "snap.pkl"
        cache.save(path)
        unbounded_size = path.stat().st_size
        bound = unbounded_size // 4
        written = cache.save(path, policy=SnapshotPolicy(max_total_bytes=bound))
        assert path.stat().st_size <= bound
        assert 0 < written < 300
        # The survivors are the most recently used tail.
        restored = EvaluationCache()
        restored.load(path)
        assert ("ctx", "x" * 50, 299) in restored.fitness

    def test_policy_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError):
            SnapshotPolicy(max_age_seconds=0)
        with pytest.raises(ValueError):
            SnapshotPolicy(max_entries_per_section=-1)
        with pytest.raises(ValueError):
            SnapshotPolicy(max_total_bytes=0)

    def test_pipeline_scale_policy_reaches_save(self, tmp_path):
        """The scale's compaction knobs become the pipeline's policy."""
        scale = ExperimentScale(
            name="tiny-policy",
            datasets=("breast_cancer",),
            cache_dir=str(tmp_path),
            cache_max_age_days=7.0,
            cache_max_snapshot_bytes=123_456,
        )
        pipeline = DatasetPipeline(scale)
        policy = pipeline.snapshot_policy
        assert policy == SnapshotPolicy(
            max_age_seconds=7.0 * 86400.0, max_total_bytes=123_456
        )
        diskless = DatasetPipeline(
            ExperimentScale(name="no-policy", cache_max_age_days=None)
        )
        assert diskless.snapshot_policy is None


class TestCorruptionTolerance:
    def test_missing_file_loads_nothing(self, tmp_path):
        cache = EvaluationCache()
        assert cache.load(tmp_path / "absent.pkl") == 0

    def test_garbage_bytes_load_nothing(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"\x00\x01not a pickle at all")
        assert EvaluationCache().load(path) == 0

    def test_truncated_snapshot_loads_nothing(self, tmp_path):
        cache = EvaluationCache()
        for index in range(100):
            cache.fitness.put(("ctx", index), float(index))
        path = tmp_path / "snap.pkl"
        cache.save(path)
        truncated = tmp_path / "truncated.pkl"
        truncated.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert EvaluationCache().load(truncated) == 0

    def test_foreign_pickle_loads_nothing(self, tmp_path):
        path = tmp_path / "foreign.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        assert EvaluationCache().load(path) == 0

    def test_version_mismatch_loads_nothing(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put("k", "v")
        path = tmp_path / "snap.pkl"
        cache.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert EvaluationCache().load(path) == 0

    def test_malicious_pickle_is_refused_without_execution(self, tmp_path):
        """Snapshots deserialize through a restricted unpickler: a
        pickle carrying an os.system payload must be rejected before
        anything executes, not after."""
        import os

        marker = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.system, (f"touch {marker}",))

        path = tmp_path / "evil.pkl"
        path.write_bytes(pickle.dumps(Evil()))
        assert EvaluationCache().load(path) == 0
        assert not marker.exists()

    def test_malformed_section_is_skipped(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put("k", "v")
        path = tmp_path / "snap.pkl"
        cache.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["sections"]["accuracy"] = 42  # not an entry list
        path.write_bytes(pickle.dumps(payload))
        restored = EvaluationCache()
        restored.load(path)
        assert restored.fitness.get("k") == "v"
        assert len(restored.accuracy) == 0


class TestStableKeys:
    def test_split_fingerprint_uses_no_process_salted_hash(self):
        """The fingerprint must survive a process restart: every part is
        a plain value (no builtin ``hash`` of bytes, which is salted by
        ``PYTHONHASHSEED``)."""
        inputs = np.arange(12, dtype=np.int64).reshape(4, 3)
        labels = np.array([0, 1, 0, 1])
        fingerprint = EvaluationCache.split_fingerprint(inputs, labels)
        assert fingerprint == EvaluationCache.split_fingerprint(inputs, labels)
        # Stable golden value: changes here break every on-disk cache,
        # so they must come with a CACHE_FORMAT_VERSION bump.
        flat = []

        def flatten(part):
            if isinstance(part, tuple):
                for item in part:
                    flatten(item)
            else:
                flat.append(part)

        flatten(fingerprint)
        assert all(isinstance(part, (int, str)) for part in flat)

    def test_split_fingerprint_distinguishes_dtype(self):
        same_bytes_a = np.array([1, 2, 3, 4], dtype=np.int32)
        same_bytes_b = same_bytes_a.view(np.float32)
        labels = np.zeros(4, dtype=np.int64)
        assert EvaluationCache.split_fingerprint(
            same_bytes_a, labels
        ) != EvaluationCache.split_fingerprint(same_bytes_b, labels)

    def test_fitness_keys_round_trip_through_pickle(self, small_topology, approx_config):
        """Snapshot keys embed the layout identity; pickling must not
        change their equality/hash (frozen dataclasses of plain ints)."""
        from repro.core.chromosome import ChromosomeLayout

        layout = ChromosomeLayout(small_topology, approx_config)
        key = (
            EvaluationCache.layout_key(layout),
            EvaluationCache.genome_key(np.zeros(layout.num_genes, dtype=np.int64)),
        )
        assert pickle.loads(pickle.dumps(key)) == key
        assert hash(pickle.loads(pickle.dumps(key))) == hash(key)


def _pool_writer(directory, owner, start, count):
    """Child-process body: flush ``count`` fitness entries into the pool."""
    from repro.core.cache import CachePool, EvaluationCache

    cache = EvaluationCache()
    pool = CachePool(directory, owner=owner)
    pool.refresh(cache)
    for index in range(start, start + count):
        cache.fitness.put(("ctx", index), float(index))
    pool.flush(cache)


class TestCachePool:
    def test_flush_writes_only_new_entries(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put(("ctx", 1), 1.0)
        pool = CachePool(tmp_path, owner="writer")
        # A fresh handle seeds the pool with everything the cache holds.
        assert pool.flush(cache) == 1
        # Nothing new since → no segment written.
        assert pool.flush(cache) == 0
        cache.fitness.put(("ctx", 2), 2.0)
        assert pool.flush(cache) == 1
        assert len(pool.segment_paths()) == 2

    def test_refresh_merges_unseen_segments_once(self, tmp_path):
        writer_cache = EvaluationCache()
        writer_cache.fitness.put(("ctx", 1), 1.0)
        writer_cache.accuracy.put(("ctx", "split"), 0.5)
        CachePool(tmp_path, owner="writer").flush(writer_cache)

        reader_cache = EvaluationCache()
        reader = CachePool(tmp_path, owner="reader")
        assert reader.refresh(reader_cache) == 2
        assert reader_cache.fitness.get(("ctx", 1)) == 1.0
        assert reader_cache.accuracy.get(("ctx", "split")) == 0.5
        # Segments already merged are not loaded again.
        assert reader.refresh(reader_cache) == 0

    def test_refresh_baseline_prevents_echoing_merged_entries(self, tmp_path):
        """Entries merged from the pool must not be re-flushed as own work."""
        writer_cache = EvaluationCache()
        writer_cache.fitness.put(("ctx", 1), 1.0)
        CachePool(tmp_path, owner="writer").flush(writer_cache)

        reader_cache = EvaluationCache()
        reader = CachePool(tmp_path, owner="reader")
        reader.refresh(reader_cache)
        assert reader.flush(reader_cache) == 0
        reader_cache.fitness.put(("ctx", 2), 2.0)
        assert reader.flush(reader_cache) == 1

    def test_concurrent_writers_never_corrupt_or_drop_entries(self, tmp_path):
        """Two processes flushing into the same directory concurrently:
        a merge-on-load afterwards must see every entry of both."""
        import multiprocessing

        ctx = multiprocessing.get_context()
        workers = [
            ctx.Process(target=_pool_writer, args=(tmp_path, f"w{i}", i * 100, 25))
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0

        merged = EvaluationCache()
        loaded = CachePool(tmp_path, owner="reader").refresh(merged)
        assert loaded == 50
        for index in list(range(0, 25)) + list(range(100, 125)):
            assert merged.fitness.get(("ctx", index)) == float(index)

    def test_torn_segment_is_tolerated(self, tmp_path):
        cache = EvaluationCache()
        cache.fitness.put(("ctx", 1), 1.0)
        pool = CachePool(tmp_path, owner="writer")
        pool.flush(cache)
        (tmp_path / f"torn{CachePool.SEGMENT_SUFFIX}").write_bytes(b"\x80garbage")
        restored = EvaluationCache()
        assert CachePool(tmp_path, owner="reader").refresh(restored) == 1
        assert restored.fitness.get(("ctx", 1)) == 1.0

    def test_compact_folds_segments_into_one(self, tmp_path):
        cache = EvaluationCache()
        pool = CachePool(tmp_path, owner="writer")
        for index in range(3):
            cache.fitness.put(("ctx", index), float(index))
            pool.flush(cache)
        assert len(pool.segment_paths()) == 3
        assert pool.compact(cache) == 3
        assert len(pool.segment_paths()) == 1
        restored = EvaluationCache()
        assert CachePool(tmp_path, owner="reader").refresh(restored) == 3


TINY = ExperimentScale(
    name="tiny-cache",
    datasets=("breast_cancer",),
    max_samples=200,
    gradient_epochs=30,
    gradient_restarts=1,
    ga_population=16,
    ga_generations=6,
    max_front_designs=6,
    seed=0,
)


class TestPipelinePersistence:
    def test_second_run_hits_over_90_percent(self, tmp_path):
        """The acceptance criterion: an identical second run against the
        same cache directory reports > 90 % fitness-cache hit rate and
        reproduces the same designs."""
        first = DatasetPipeline(TINY, cache_dir=tmp_path)
        first_result = first.approximate("breast_cancer")
        first_summary = first.cache_summary()["breast_cancer"]
        assert first_summary["loaded"] == 0
        assert first_summary["saved"] > 0
        assert (tmp_path / "breast_cancer.cache.pkl").exists()

        second = DatasetPipeline(TINY, cache_dir=tmp_path)
        second_result = second.approximate("breast_cancer")
        second_summary = second.cache_summary()["breast_cancer"]
        assert second_summary["loaded"] == first_summary["saved"]
        assert second_summary["hit_rate"] > 0.9

        # Same seed + restored fitness values => identical evolution.
        first_designs = [
            (d.point.error, d.point.area, d.test_accuracy, d.report.area_cm2)
            for d in first_result.approximate.designs
        ]
        second_designs = [
            (d.point.error, d.point.area, d.test_accuracy, d.report.area_cm2)
            for d in second_result.approximate.designs
        ]
        assert first_designs == second_designs

        # The GA never recomputed a fitness: everything it asked for was
        # either restored from disk or memoized within the run.
        ga_stats = second_result.approximate.ga_result.history[-1]
        assert ga_stats.fitness_computations == 0

    def test_scale_cache_dir_is_used(self, tmp_path):
        scale = ExperimentScale(
            name="tiny-cache-scale",
            datasets=("breast_cancer",),
            max_samples=200,
            gradient_epochs=30,
            gradient_restarts=1,
            ga_population=16,
            ga_generations=4,
            max_front_designs=6,
            seed=0,
            cache_dir=str(tmp_path / "from-scale"),
        )
        pipeline = DatasetPipeline(scale)
        pipeline.approximate("breast_cancer")
        assert (tmp_path / "from-scale" / "breast_cancer.cache.pkl").exists()

    def test_no_cache_dir_keeps_pipeline_diskless(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pipeline = DatasetPipeline(TINY)
        assert pipeline.cache_dir is None
        pipeline.approximate("breast_cancer")
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere
        assert pipeline.cache_summary()["breast_cancer"]["loaded"] == 0


class TestRunnerFlag:
    def test_runner_cache_dir_reports_hit_rate(self, tmp_path, capsys, monkeypatch):
        """``runner.py --cache-dir`` wires the directory through and
        prints the per-dataset ``[cache]`` summary."""
        from repro.experiments import runner as runner_module
        from repro.experiments.config import SCALES

        monkeypatch.setitem(SCALES, "tiny-cache", TINY)
        argv = [
            "--experiment",
            "table2",
            "--scale",
            "tiny-cache",
            "--cache-dir",
            str(tmp_path),
        ]
        assert runner_module.main(argv) == 0
        first_out = capsys.readouterr().out
        assert "[cache] breast_cancer" in first_out
        assert (tmp_path / "breast_cancer.cache.pkl").exists()

        assert runner_module.main(argv) == 0
        second_out = capsys.readouterr().out
        line = next(
            l for l in second_out.splitlines() if l.startswith("[cache] breast_cancer")
        )
        rate = float(line.split("(")[1].split("%")[0])
        assert rate > 90.0
