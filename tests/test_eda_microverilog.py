"""Tests for the microverilog parser/simulator — the fifth oracle.

Three layers:

* **language units** — literals, width/signedness contexts, operators,
  part-selects, concats, localparams, always blocks, and the loud-error
  paths (outside-subset text must raise, never parse-and-skip);
* **mutation detection** — programmatically tampered module text
  (flipped comparison, narrowed width, dropped ``signed``, altered
  saturation bound) must produce mismatches or a parse error; mutation
  seeds were chosen so each tamper provably changes behaviour on the
  applied vectors (a vacuously-passing oracle would fail these);
* **harness integration** — ``verify_design(eda=True)`` populates the
  new fields, rejects illegal module text loudly, and the seeded
  stimulus draw is reproducible.
"""

import re

import numpy as np
import pytest

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP
from repro.approx.topology import Topology
from repro.eda.microverilog import (
    MAX_WIDTH,
    MicroVerilogError,
    parse_module,
    simulate_mlp_module,
)
from repro.evaluation.verification import verify_design
from repro.rtl.verilog import generate_mlp_verilog


def _module(body: str, ports: str = "input  wire [7:0] in0,\n    output wire [7:0] out") -> str:
    return f"module t (\n    {ports}\n);\n{body}\nendmodule\n"


def _eval1(body: str, in0: int, ports=None) -> int:
    text = _module(body) if ports is None else _module(body, ports)
    module = parse_module(text)
    return int(module.evaluate({"in0": np.array([in0])})["out"][0])


def _random_mlp(seed: int, sizes=(4, 3, 2)):
    rng = np.random.default_rng(seed)
    mlp = ApproximateMLP.random(Topology(sizes), ApproxConfig(), rng, mask_density=0.5)
    vectors = rng.integers(0, 16, size=(64, sizes[0]))
    return mlp, generate_mlp_verilog(mlp), vectors


# ----------------------------------------------------------------------
# Language semantics
# ----------------------------------------------------------------------
class TestExpressionSemantics:
    def test_sized_literal_and_masking(self):
        assert _eval1("    assign out = 8'd200;", 0) == 200

    def test_assignment_truncates_to_lhs_width(self):
        # 200 + 100 = 300 wraps to 44 in the 8-bit LHS context.
        assert _eval1("    assign out = 8'd200 + 8'd100;", 0) == 44

    def test_unsigned_subtraction_wraps(self):
        assert _eval1("    assign out = 8'd3 - 8'd5;", 0) == 254

    def test_signed_comparison_vs_unsigned_pattern(self):
        # -1 stored in a signed wire compares below zero; the same bit
        # pattern through an unsigned wire does not.
        body = (
            "    wire signed [7:0] s = -1;\n"
            "    wire [7:0] u = 8'd255;\n"
            "    assign out = {7'd0, s < 0} + {6'd0, (u < 8'd1), 1'b0};"
        )
        assert _eval1(body, 0) == 1

    def test_comparison_signed_iff_both_operands_signed(self):
        # signed -1 vs unsigned 1: the comparison happens unsigned, so
        # the 255 pattern is NOT below 1 (Verilog's classic footgun).
        body = (
            "    wire signed [7:0] s = -1;\n"
            "    assign out = {7'd0, s < 8'd1};"
        )
        assert _eval1(body, 0) == 0

    def test_arithmetic_shift_right_sign_extends(self):
        body = (
            "    wire signed [7:0] s = -8;\n"
            "    wire signed [7:0] sh = s >>> 2;\n"
            "    assign out = sh;"
        )
        assert _eval1(body, 0) == (-2) & 0xFF

    def test_logical_shift_right_zero_fills(self):
        body = (
            "    wire [7:0] u = 8'd248;\n"
            "    wire [7:0] sh = u >> 2;\n"
            "    assign out = sh;"
        )
        assert _eval1(body, 0) == 62

    def test_part_select_is_unsigned(self):
        body = (
            "    wire signed [7:0] s = -1;\n"
            "    assign out = {4'd0, s[3:0]};"
        )
        assert _eval1(body, 0) == 15

    def test_concat_orders_msb_first(self):
        assert _eval1("    assign out = {4'd10, 4'd5};", 0) == 0xA5

    def test_ternary_selects_by_condition(self):
        body = "    assign out = (in0 > 8'd10) ? 8'd1 : 8'd2;"
        assert _eval1(body, 11) == 1
        assert _eval1(body, 10) == 2

    def test_localparam_integer_is_signed_32bit(self):
        body = (
            "    localparam integer LIMIT = 100;\n"
            "    wire signed [8:0] s = -1;\n"
            "    assign out = {7'd0, s < LIMIT};"
        )
        assert _eval1(body, 0) == 1

    def test_sign_extension_through_wider_context(self):
        # A 4-bit signed value read in an 8-bit signed context extends.
        body = (
            "    wire signed [3:0] small = -3;\n"
            "    wire signed [7:0] wide = small;\n"
            "    assign out = wide;"
        )
        assert _eval1(body, 0) == (-3) & 0xFF

    def test_always_if_else_chain(self):
        body = (
            "    reg [7:0] r;\n"
            "    always @* begin\n"
            "        r = 8'd0;\n"
            "        if (in0 > 8'd10) begin\n"
            "            r = 8'd1;\n"
            "        end\n"
            "        if (in0 > 8'd100) begin\n"
            "            r = 8'd2;\n"
            "        end\n"
            "    end\n"
            "    assign out = r;"
        )
        assert _eval1(body, 5) == 0
        assert _eval1(body, 50) == 1
        assert _eval1(body, 200) == 2

    def test_assign_order_is_topological_not_textual(self):
        # "b" is declared/driven after "a" reads it textually.
        body = (
            "    wire [7:0] a = b + 8'd1;\n"
            "    wire [7:0] b = in0;\n"
            "    assign out = a;"
        )
        assert _eval1(body, 4) == 5

    def test_vectorized_evaluation_matches_scalar(self):
        text = _module("    assign out = (in0 > 8'd7) ? in0 - 8'd7 : 8'd0;")
        module = parse_module(text)
        batch = np.arange(20, dtype=np.int64)
        out = module.evaluate({"in0": batch})["out"]
        expected = np.where(batch > 7, batch - 7, 0)
        assert np.array_equal(out, expected)


class TestLoudErrors:
    def test_part_select_on_expression_is_rejected(self):
        """The exact illegal shape the generator used to emit."""
        body = (
            "    wire signed [9:0] acc = in0 + 8'd1;\n"
            "    assign out = (acc >>> 2)[7:0];"
        )
        with pytest.raises(MicroVerilogError):
            parse_module(_module(body))

    def test_four_state_literal_rejected(self):
        with pytest.raises(MicroVerilogError, match="4-state"):
            parse_module(_module("    assign out = 8'bxxxxxxxx;"))

    def test_oversized_literal_rejected(self):
        with pytest.raises(MicroVerilogError, match="does not fit"):
            parse_module(_module("    assign out = 4'd16 + 8'd0;"))

    def test_unknown_identifier_rejected(self):
        with pytest.raises(MicroVerilogError, match="ghost"):
            parse_module(_module("    assign out = ghost;"))

    def test_multiple_drivers_rejected(self):
        body = "    assign out = 8'd1;\n    assign out = 8'd2;"
        with pytest.raises(MicroVerilogError, match="multiple drivers"):
            parse_module(_module(body))

    def test_combinational_cycle_rejected(self):
        body = (
            "    wire [7:0] a = b;\n"
            "    wire [7:0] b = a;\n"
            "    assign out = a;"
        )
        with pytest.raises(MicroVerilogError, match="cycle"):
            parse_module(_module(body))

    def test_undriven_wire_rejected(self):
        body = "    wire [7:0] floating;\n    assign out = floating;"
        with pytest.raises(MicroVerilogError, match="never driven"):
            parse_module(_module(body))

    def test_width_beyond_supported_rejected(self):
        with pytest.raises(MicroVerilogError, match=str(MAX_WIDTH)):
            parse_module(_module(f"    wire [{MAX_WIDTH}:0] huge = 0;\n    assign out = huge[7:0];"))

    def test_select_past_declared_width_rejected(self):
        text = _module("    assign out = {4'd0, in0[11:8]};")
        with pytest.raises(MicroVerilogError, match="exceeds"):
            parse_module(text).evaluate({"in0": np.array([1])})

    def test_trailing_text_rejected(self):
        with pytest.raises(MicroVerilogError, match="trailing"):
            parse_module(_module("    assign out = in0;") + "module extra (); endmodule")

    def test_stimulus_out_of_range_rejected(self):
        module = parse_module(_module("    assign out = in0;"))
        with pytest.raises(MicroVerilogError, match="range"):
            module.evaluate({"in0": np.array([256])})

    def test_stimulus_port_mismatch_rejected(self):
        module = parse_module(_module("    assign out = in0;"))
        with pytest.raises(MicroVerilogError, match="input ports"):
            module.evaluate({"in0": np.array([1]), "in1": np.array([2])})

    def test_non_mlp_port_convention_rejected(self):
        text = "module m (\n    input wire [3:0] data,\n    output wire [1:0] class_index\n);\n    assign class_index = data[1:0];\nendmodule\n"
        with pytest.raises(MicroVerilogError, match="in0"):
            simulate_mlp_module(text, np.zeros((1, 1), dtype=np.int64))


# ----------------------------------------------------------------------
# Generated modules: simulator vs Python model
# ----------------------------------------------------------------------
class TestGeneratedModules:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_model_predictions(self, seed):
        mlp, text, vectors = _random_mlp(seed)
        assert np.array_equal(simulate_mlp_module(text, vectors), mlp.predict(vectors))

    def test_three_layer_topology(self):
        mlp, text, vectors = _random_mlp(3, sizes=(5, 4, 3, 2))
        assert np.array_equal(simulate_mlp_module(text, vectors), mlp.predict(vectors))

    def test_boundary_vectors(self):
        mlp, text, _ = _random_mlp(7)
        boundary = np.array([[0, 0, 0, 0], [15, 15, 15, 15]], dtype=np.int64)
        assert np.array_equal(
            simulate_mlp_module(text, boundary), mlp.predict(boundary)
        )

    def test_module_ports_reflect_topology(self):
        _, text, _ = _random_mlp(0)
        module = parse_module(text)
        assert [port.name for port in module.inputs] == ["in0", "in1", "in2", "in3"]
        assert [port.name for port in module.outputs] == ["class_index"]


# ----------------------------------------------------------------------
# Mutation detection: tampered text must fail loudly
# ----------------------------------------------------------------------
class TestMutationDetection:
    """Each tamper provably alters behaviour for its chosen seed (the
    seeds were selected so the mutated text both still parses and
    disagrees with the model on the applied vectors)."""

    def _assert_detected(self, mlp, mutated, vectors):
        golden = mlp.predict(vectors)
        try:
            got = simulate_mlp_module(mutated, vectors)
        except MicroVerilogError:
            return  # rejecting the tampered text is also a loud failure
        assert np.count_nonzero(got != golden) > 0, (
            "tampered Verilog simulated identically to the model — "
            "the oracle is vacuous"
        )

    def test_flipped_argmax_comparison(self):
        mlp, text, vectors = _random_mlp(0)
        mutated = text.replace("> best_score", "< best_score")
        assert mutated != text
        self._assert_detected(mlp, mutated, vectors)

    def test_narrowed_accumulator_width(self):
        mlp, text, vectors = _random_mlp(0)
        mutated = re.sub(
            r"wire signed \[\d+:0\] (acc_l1_)", r"wire signed [2:0] \1", text
        )
        assert mutated != text
        self._assert_detected(mlp, mutated, vectors)

    def test_dropped_sign_on_output_accumulators(self):
        mlp, text, vectors = _random_mlp(0)
        mutated = re.sub(r"wire signed (\[\d+:0\] acc_l1_)", r"wire \1", text)
        assert mutated != text
        self._assert_detected(mlp, mutated, vectors)

    def test_dropped_sign_on_hidden_accumulators(self):
        mlp, text, vectors = _random_mlp(1)
        mutated = re.sub(r"wire signed (\[\d+:0\] acc_l0_)", r"wire \1", text)
        assert mutated != text
        self._assert_detected(mlp, mutated, vectors)

    def test_tampered_saturation_bound(self):
        mlp, text, vectors = _random_mlp(1)
        mutated = re.sub(r"(ACT_MAX_L0 = )\d+", r"\g<1>3", text)
        assert mutated != text
        self._assert_detected(mlp, mutated, vectors)


# ----------------------------------------------------------------------
# verify_design(eda=True) integration
# ----------------------------------------------------------------------
class TestFifthOracleIntegration:
    def test_clean_design_has_zero_eda_mismatches(self):
        mlp, _, vectors = _random_mlp(2)
        verification = verify_design(mlp, vectors, eda=True)
        assert verification.eda_oracle is True
        assert verification.eda_mismatches == 0
        assert verification.passed

    def test_eda_off_by_default(self):
        mlp, _, vectors = _random_mlp(2)
        verification = verify_design(mlp, vectors[:8])
        assert verification.eda_oracle is False
        assert verification.eda_mismatches == 0

    def test_tampered_module_text_counts_eda_mismatches(self):
        mlp, text, vectors = _random_mlp(0)
        mutated = text.replace("> best_score", "< best_score")
        verification = verify_design(mlp, vectors, verilog_text=mutated, eda=True)
        assert verification.eda_mismatches > 0
        assert not verification.passed
        assert verification.total_mismatches >= verification.eda_mismatches

    def test_unparsable_module_text_raises(self):
        mlp, text, vectors = _random_mlp(0)
        mutated = text.replace("endmodule", "endmodule garbage garbage")
        with pytest.raises(MicroVerilogError):
            verify_design(mlp, vectors, verilog_text=mutated, eda=True)
