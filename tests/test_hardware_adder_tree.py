"""Tests for the FA-counting adder-tree area model (eq. 2) and its fast twin."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.config import ApproxConfig
from repro.approx.mlp import ApproximateMLP
from repro.approx.neuron import ApproximateNeuron
from repro.approx.topology import Topology
from repro.hardware.adder_tree import (
    AdderTreeCost,
    approximate_neuron_columns,
    bit_positions,
    count_adders_from_columns,
    mlp_adder_cost,
    mlp_fa_count,
    neuron_adder_cost,
)
from repro.hardware.fast_area import (
    fast_mlp_fa_count,
    layer_column_counts,
    reduce_columns_fa_count,
)


class TestBitPositions:
    def test_examples(self):
        assert bit_positions(0) == []
        assert bit_positions(1) == [0]
        assert bit_positions(0b1011) == [0, 1, 3]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_positions(-1)


class TestColumns:
    def test_single_connection_full_mask(self):
        counts = approximate_neuron_columns(
            masks=np.array([0b1111]), exponents=np.array([0]), bias=0, input_bits=4
        )
        assert np.array_equal(counts[:4], np.array([1, 1, 1, 1]))

    def test_exponent_shifts_columns(self):
        counts = approximate_neuron_columns(
            masks=np.array([0b11]), exponents=np.array([2]), bias=0, input_bits=4
        )
        assert counts[2] == 1 and counts[3] == 1 and counts[0] == 0

    def test_bias_bits_counted(self):
        counts = approximate_neuron_columns(
            masks=np.array([0]), exponents=np.array([0]), bias=0b101, input_bits=4
        )
        assert counts[0] == 1 and counts[2] == 1

    def test_negative_bias_counts_magnitude(self):
        counts = approximate_neuron_columns(
            masks=np.array([0]), exponents=np.array([0]), bias=-3, input_bits=4
        )
        assert counts[0] == 1 and counts[1] == 1


class TestCountAdders:
    def test_three_bits_one_fa(self):
        # Paper: "for every three constant bits in a column, one FA is eliminated";
        # conversely three live bits in a column cost exactly one FA.
        cost = count_adders_from_columns([3])
        assert cost.full_adders == 1
        assert cost.reduction_stages == 1

    def test_two_bits_no_fa(self):
        assert count_adders_from_columns([2]).full_adders == 0

    def test_six_bits_two_fas_then_more(self):
        cost = count_adders_from_columns([6])
        # First stage: 2 FAs -> column has 2 bits + 2 carries next column.
        assert cost.full_adders == 2

    def test_monotonic_in_column_population(self):
        small = count_adders_from_columns([4, 4, 4]).full_adders
        large = count_adders_from_columns([8, 8, 8]).full_adders
        assert large > small

    def test_final_cpa_counts_two_bit_columns(self):
        cost = count_adders_from_columns([2, 2], include_final_cpa=True)
        assert cost.cpa_full_adders == 2
        assert cost.total_full_adders == 2

    def test_half_adders_only_when_enabled(self):
        plain = count_adders_from_columns([5, 5])
        with_ha = count_adders_from_columns([5, 5], use_half_adders=True)
        assert plain.half_adders == 0
        assert with_ha.half_adders >= 0

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            count_adders_from_columns([-1])

    def test_cost_addition(self):
        a = AdderTreeCost(full_adders=2, half_adders=1, cpa_full_adders=3, reduction_stages=2)
        b = AdderTreeCost(full_adders=1, reduction_stages=5)
        total = a + b
        assert total.full_adders == 3
        assert total.half_adders == 1
        assert total.reduction_stages == 5
        assert sum([a, b], AdderTreeCost()).full_adders == 3
        assert a.fa_equivalent == pytest.approx(5.5)


class TestNeuronAndMlpCost:
    def test_pruning_reduces_fa_count(self, rng):
        dense = ApproximateNeuron(
            masks=np.full(8, 0b1111),
            signs=np.ones(8, dtype=int),
            exponents=np.zeros(8, dtype=int),
            bias=0,
            input_bits=4,
        )
        sparse = ApproximateNeuron(
            masks=np.array([0b0001] * 8),
            signs=np.ones(8, dtype=int),
            exponents=np.zeros(8, dtype=int),
            bias=0,
            input_bits=4,
        )
        assert neuron_adder_cost(dense).full_adders > neuron_adder_cost(sparse).full_adders

    def test_fully_pruned_mlp_has_zero_fa(self, small_topology, approx_config, rng):
        mlp = ApproximateMLP.random(small_topology, approx_config, rng, mask_density=0.0)
        for layer in mlp.layers:
            layer.biases[:] = 0
        assert mlp_fa_count(mlp) == 0

    def test_mlp_cost_is_sum_of_layers(self, random_mlp):
        total = mlp_adder_cost(random_mlp)
        assert total.full_adders == mlp_fa_count(random_mlp)
        assert total.full_adders > 0


class TestFastArea:
    def test_fast_matches_reference_random_mlps(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            topology = Topology((int(rng.integers(2, 12)), int(rng.integers(2, 6)), int(rng.integers(2, 8))))
            mlp = ApproximateMLP.random(topology, ApproxConfig(), rng, mask_density=float(rng.random()))
            assert fast_mlp_fa_count(mlp) == mlp_fa_count(mlp)

    def test_layer_column_counts_shape(self, random_mlp):
        layer = random_mlp.layers[0]
        counts = layer_column_counts(layer.masks, layer.exponents, layer.biases, layer.input_bits)
        assert counts.shape[1] == layer.fan_out
        assert counts.sum() > 0

    def test_reduce_rejects_1d(self):
        with pytest.raises(ValueError):
            reduce_columns_fa_count(np.array([1, 2, 3]))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_property_fast_equals_reference(self, seed):
        rng = np.random.default_rng(seed)
        topology = Topology((int(rng.integers(1, 8)), int(rng.integers(1, 5)), int(rng.integers(2, 5))))
        mlp = ApproximateMLP.random(topology, ApproxConfig(), rng, mask_density=float(rng.random()))
        assert fast_mlp_fa_count(mlp) == mlp_fa_count(mlp)
