"""Tests for the gate-level netlist, logic simulator and Verilog generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.neuron import ApproximateNeuron
from repro.hardware.gates import GATE_FUNCTIONS, Gate, gate_output_count
from repro.hardware.netlist import build_neuron_netlist
from repro.hardware.simulator import simulate, simulate_neuron_netlist, verify_neuron_netlist
from repro.rtl.testbench import generate_testbench
from repro.rtl.verilog import generate_mlp_verilog, generate_neuron_expression


class TestGates:
    def test_full_adder_truth_table(self):
        fa = GATE_FUNCTIONS["FA"]
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, carry = fa(a, b, c)
                    assert s + 2 * carry == a + b + c

    def test_half_adder_truth_table(self):
        ha = GATE_FUNCTIONS["HA"]
        for a in (0, 1):
            for b in (0, 1):
                s, carry = ha(a, b)
                assert s + 2 * carry == a + b

    def test_mux(self):
        mux = GATE_FUNCTIONS["MUX2"]
        assert mux(0, 1, 0) == (0,)
        assert mux(0, 1, 1) == (1,)

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            Gate(gate_type="FOO", inputs=(0,), outputs=(1,))
        with pytest.raises(ValueError):
            Gate(gate_type="AND2", inputs=(0,), outputs=(1,))
        with pytest.raises(ValueError):
            Gate(gate_type="FA", inputs=(0, 1, 2), outputs=(3,))

    def test_output_counts(self):
        assert gate_output_count("FA") == 2
        assert gate_output_count("AND2") == 1
        with pytest.raises(KeyError):
            gate_output_count("BAD")


class TestNetlistSimulation:
    def test_positive_only_neuron(self):
        neuron = ApproximateNeuron(
            masks=np.array([0b1111, 0b1111]),
            signs=np.array([1, 1]),
            exponents=np.array([0, 1]),
            bias=3,
            input_bits=4,
        )
        results = simulate_neuron_netlist(neuron, [[5, 7], [0, 0], [15, 15]])
        assert results == [5 + 14 + 3, 3, 15 + 30 + 3]

    def test_negative_sign_neuron(self):
        neuron = ApproximateNeuron(
            masks=np.array([0b1111]),
            signs=np.array([-1]),
            exponents=np.array([0]),
            bias=0,
            input_bits=4,
        )
        assert simulate_neuron_netlist(neuron, [[9]]) == [-9]

    def test_masked_bits_ignored(self):
        neuron = ApproximateNeuron(
            masks=np.array([0b1010]),
            signs=np.array([1]),
            exponents=np.array([0]),
            bias=0,
            input_bits=4,
        )
        assert simulate_neuron_netlist(neuron, [[0b1111]]) == [0b1010]

    def test_verify_random_neurons(self, rng, make_neuron):
        for _ in range(5):
            assert verify_neuron_netlist(make_neuron(rng), rng=rng, num_vectors=8)

    def test_verify_slow_oracle_equivalence(self, rng, make_neuron):
        # Oracle pairing (lint RP02): the batched verification path must
        # agree with the scalar slow=True reference walk on the same
        # neuron and the same drawn vectors.
        for _ in range(3):
            neuron = make_neuron(rng)
            high = 1 << neuron.input_bits
            inputs = rng.integers(0, high, size=(8, neuron.fan_in)).tolist()
            assert verify_neuron_netlist(neuron, inputs=inputs)
            assert verify_neuron_netlist(neuron, inputs=inputs, slow=True)

    def test_simulate_missing_input_raises(self, rng, make_neuron):
        neuron = make_neuron(rng)
        netlist = build_neuron_netlist(neuron)
        with pytest.raises(KeyError):
            simulate(netlist, {})

    def test_simulate_rejects_out_of_range_value(self, rng, make_neuron):
        neuron = make_neuron(rng, fan_in=1)
        netlist = build_neuron_netlist(neuron)
        with pytest.raises(ValueError):
            simulate(netlist, {"x0": 16})

    def test_netlist_cell_counts_nonempty(self, rng, make_neuron):
        netlist = build_neuron_netlist(make_neuron(rng))
        counts = netlist.cell_counts()
        assert netlist.num_gates == sum(counts.values())
        assert netlist.num_gates > 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_property_netlist_matches_model(self, make_neuron, seed):
        rng = np.random.default_rng(seed)
        neuron = make_neuron(rng, fan_in=int(rng.integers(1, 6)))
        assert verify_neuron_netlist(neuron, rng=rng, num_vectors=6)


class TestVerilogGeneration:
    @pytest.fixture
    def mlp(self, rng, make_mlp):
        return make_mlp(rng, sizes=(4, 3, 2), mask_density=0.7)

    def test_module_structure(self, mlp):
        text = generate_mlp_verilog(mlp, module_name="bc_mlp")
        assert text.startswith("// Automatically generated")
        assert "module bc_mlp (" in text
        assert text.rstrip().endswith("endmodule")
        assert text.count("input  wire") == 4
        assert "class_index" in text

    def test_hardwired_constants_present(self, mlp):
        text = generate_mlp_verilog(mlp)
        layer = mlp.layers[0]
        nonzero = np.flatnonzero(layer.masks[:, 0])
        if nonzero.size:
            i = int(nonzero[0])
            assert f"in{i} & 4'd{int(layer.masks[i, 0])}" in text

    def test_neuron_expression_zero_when_pruned(self, rng, make_mlp):
        mlp = make_mlp(rng, sizes=(3, 2, 2), mask_density=0.0)
        for layer in mlp.layers:
            layer.biases[:] = 0
        expr = generate_neuron_expression(mlp, 0, 0, "in")
        assert "&" not in expr

    def test_every_neuron_has_a_wire(self, mlp):
        text = generate_mlp_verilog(mlp)
        for j in range(3):
            assert f"acc_l0_n{j}" in text
        for j in range(2):
            assert f"acc_l1_n{j}" in text

    def test_testbench_contains_golden_predictions(self, mlp, rng):
        vectors = rng.integers(0, 16, size=(5, 4))
        expected = mlp.predict(vectors)
        text = generate_testbench(mlp, vectors=vectors)
        assert "TESTBENCH PASSED" in text
        for value in expected:
            assert f"'d{int(value)}" in text

    def test_testbench_random_vectors(self, mlp):
        text = generate_testbench(mlp, num_random_vectors=3)
        assert text.count("#1;") == 3

    def test_testbench_rejects_bad_vector_shape(self, mlp):
        with pytest.raises(ValueError):
            generate_testbench(mlp, vectors=np.zeros((2, 7), dtype=int))

    def test_testbench_is_verilog_2001_compatible(self, mlp):
        """Regression: the mismatch message must not use the
        SystemVerilog-only ``%p`` format (breaks e.g. iverilog) — the
        applied input vector is spelled out literally instead."""
        vectors = np.array([[3, 0, 7, 2], [1, 15, 4, 9]])
        text = generate_testbench(mlp, vectors=vectors)
        assert "%p" not in text
        assert "inputs={3, 0, 7, 2}" in text
        assert "inputs={1, 15, 4, 9}" in text
