"""Tests of the serving split: DesignStore, pure queries, ParetoService.

Pins the tentpole guarantees of the search-time / query-time split:

* **store round-trip** — every record survives the strict-JSON store
  bit-identically, writes are atomic, malformed and version-mismatched
  files fail loudly, and the record schemas are golden-pinned;
* **import purity** — ``repro.serving`` (checked in a subprocess)
  imports no trainer, genetic operator or synthesis engine;
* **vectorized true front** — the batched dominance formulation is
  bit-identical to the scalar ``slow=True`` oracle, ties included;
* **deterministic selection** — ``select_design`` breaks area ties by
  accuracy and exact ties by stable design name, independent of input
  order;
* **stampede protection** — 64 identical concurrent queries trigger
  exactly one store read;
* **warm-store parity** — a session-published store answers
  select/front/feasibility/rtl for every dataset with zero search-stage
  executions, cell-for-cell equal to the session's own artifacts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serving import queries
from repro.serving.service import ParetoService
from repro.serving.store import (
    STORE_SCHEMA_VERSION,
    DatasetRecord,
    DesignRecord,
    DesignStore,
    FrontRecord,
    MethodRecord,
    MethodsRecord,
    ReportRecord,
    RTLRecord,
    StoreError,
    Tc23Record,
    VerificationRecord,
    design_name,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


# ---------------------------------------------------------------------------
# Fixture records
# ---------------------------------------------------------------------------


def _design(index: int, accuracy: float, area: float, **overrides) -> DesignRecord:
    values = dict(
        name=design_name(bytes([index])),
        index=index,
        test_accuracy=accuracy,
        train_accuracy=accuracy + 0.01,
        error=1.0 - (accuracy + 0.01),
        fa_count=float(40 - 10 * index),
        area_cm2=area,
        power_mw=3.0 * area,
        delay_ms=0.5,
        voltage=1.0,
        clock_period_ms=5.0,
    )
    values.update(overrides)
    return DesignRecord(**values)


def _front(designs, dataset="demo") -> FrontRecord:
    return FrontRecord(
        dataset=dataset,
        scale="smoke",
        seed=0,
        fingerprint="fp",
        split="split",
        baseline_test_accuracy=0.93,
        baseline_train_accuracy=0.95,
        baseline=ReportRecord(2.0, 6.0, 0.4, 1.0, 5.0),
        designs=tuple(designs),
        default_accuracy_loss=0.05,
        selected=designs[0].name if designs else None,
        training_seconds=1.5,
        verification=VerificationRecord(len(designs), 16, 0, 0, 0, 0, True),
    )


@pytest.fixture()
def store(tmp_path) -> DesignStore:
    """A populated store: front + tc23 + methods + RTL for one dataset."""
    designs = [_design(0, 0.92, 1.0), _design(1, 0.88, 0.6), _design(2, 0.80, 0.3)]
    store = DesignStore(tmp_path / "store")
    store.put_front(_front(designs))
    store.put_tc23(
        Tc23Record(
            dataset="demo",
            max_accuracy_loss=0.05,
            accuracy=0.9,
            report=ReportRecord(1.5, 4.0, 0.3, 1.0, 5.0),
        )
    )
    store.put_methods(
        MethodsRecord(
            dataset="demo",
            max_accuracy_loss=0.05,
            methods=(
                MethodRecord("tc23", 0.9, 1.5, 4.0),
                MethodRecord("date21", 0.6, 0.2, 0.5),
            ),
        )
    )
    for design in designs:
        store.put_rtl(
            RTLRecord(
                dataset="demo",
                design=design.name,
                module_name=f"m_{design.name}",
                verilog=f"module m_{design.name}; endmodule",
                testbench=f"// tb {design.name}",
            )
        )
    return store


class TestStoreRoundTrip:
    def test_round_trip_bit_identical(self, store):
        record = store.get_dataset("demo")
        designs = [_design(0, 0.92, 1.0), _design(1, 0.88, 0.6), _design(2, 0.80, 0.3)]
        assert record.front == _front(designs)
        assert record.tc23.accuracy == 0.9
        assert record.methods.methods[1].method == "date21"
        assert record.rtl_designs == tuple(sorted(d.name for d in designs))
        rtl = store.get_rtl("demo", designs[0].name)
        assert rtl.verilog == f"module m_{designs[0].name}; endmodule"
        assert rtl.fingerprint  # auto-derived, non-empty

    def test_special_floats_round_trip(self, tmp_path):
        store = DesignStore(tmp_path)
        designs = [_design(0, 0.9, 1.0, delay_ms=float("inf"))]
        store.put_front(_front(designs))
        loaded = store.get_front("demo")
        assert loaded.designs[0].delay_ms == float("inf")
        text = (tmp_path / "demo" / "front.json").read_text()
        assert "Infinity" in text and "$float" in text
        # The file itself stays strict JSON (no bare Infinity literal).
        json.loads(text)

    def test_missing_and_optional_sections(self, tmp_path):
        store = DesignStore(tmp_path)
        with pytest.raises(StoreError, match="no 'front' record"):
            store.get_front("demo")
        store.put_front(_front([_design(0, 0.9, 1.0)]))
        record = store.get_dataset("demo")
        assert record.tc23 is None and record.methods is None
        assert record.rtl_designs == ()
        assert store.datasets() == ["demo"]
        assert store.has_dataset("demo") and not store.has_dataset("other")

    def test_schema_version_mismatch_fails(self, store):
        path = store.root / "demo" / "front.json"
        payload = json.loads(path.read_text())
        payload["schema_version"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="schema_version"):
            store.get_front("demo")

    def test_malformed_and_unknown_fields_fail(self, store):
        path = store.root / "demo" / "front.json"
        path.write_text("{not json")
        with pytest.raises(StoreError, match="malformed"):
            store.get_front("demo")
        payload = {
            "kind": "front",
            "schema_version": STORE_SCHEMA_VERSION,
            "fingerprint": "x",
            "record": {"dataset": "demo", "bogus_field": 1},
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="bogus_field"):
            store.get_front("demo")

    def test_bare_nan_rejected(self, store):
        path = store.root / "demo" / "front.json"
        payload = json.loads(path.read_text())
        path.write_text(json.dumps(payload).replace('"fp"', "NaN"))
        with pytest.raises(StoreError):
            store.get_front("demo")

    def test_atomic_writes_leave_no_temp_files(self, store):
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file() and p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_invalid_names_rejected(self, store):
        with pytest.raises(StoreError):
            store.get_front("../escape")
        with pytest.raises(StoreError):
            store.get_rtl("demo", "../../etc")

    def test_rtl_record_eda_summary_round_trips(self, tmp_path):
        """num_vectors/num_inputs and the nested EdaSummaryRecord survive
        the strict-JSON store bit-identically."""
        from repro.serving.store import EdaSummaryRecord

        store = DesignStore(tmp_path)
        record = RTLRecord(
            dataset="demo",
            design="d_00",
            module_name="approx_mlp",
            verilog="module approx_mlp; endmodule",
            testbench="// tb",
            num_vectors=16,
            num_inputs=4,
            eda=EdaSummaryRecord(
                oracle="microverilog", num_vectors=16, mismatches=0, passed=True
            ),
        )
        store.put_rtl(record)
        loaded = store.get_rtl("demo", "d_00")
        assert loaded.num_vectors == 16
        assert loaded.num_inputs == 4
        assert isinstance(loaded.eda, EdaSummaryRecord)
        assert loaded.eda == record.eda
        # The legacy shape (no EDA summary) still loads.
        store.put_rtl(
            RTLRecord(
                dataset="demo",
                design="d_01",
                module_name="m",
                verilog="module m; endmodule",
                testbench="// tb",
            )
        )
        bare = store.get_rtl("demo", "d_01")
        assert bare.eda is None and bare.num_vectors == 0

    def test_rtl_schema_version_mismatch_fails(self, store):
        design = store.rtl_designs("demo")[0]
        path = store.root / "demo" / "rtl" / f"{design}.json"
        payload = json.loads(path.read_text())
        payload["schema_version"] = STORE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="schema_version"):
            store.get_rtl("demo", design)

    def test_rtl_eda_summary_unknown_field_fails(self, store):
        design = store.rtl_designs("demo")[0]
        path = store.root / "demo" / "rtl" / f"{design}.json"
        payload = json.loads(path.read_text())
        payload["record"]["eda"] = {
            "oracle": "microverilog",
            "num_vectors": 4,
            "mismatches": 0,
            "passed": True,
            "bogus": 1,
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="bogus"):
            store.get_rtl("demo", design)

    def test_corrupt_testbench_text_fails_loudly(self, store):
        """A stored testbench that no longer parses must raise, not
        silently verify zero vectors."""
        from repro.rtl.testbench import extract_testbench_vectors

        design = store.rtl_designs("demo")[0]
        rtl = store.get_rtl("demo", design)
        with pytest.raises(ValueError, match="does not contain"):
            extract_testbench_vectors(rtl.testbench)  # fixture tb is a stub
        with pytest.raises(ValueError, match="does not contain"):
            extract_testbench_vectors("module tb; endmodule")

    def test_record_schemas_match_golden(self):
        from repro.serving import store as store_module

        record_classes = {
            "front": FrontRecord,
            "design": DesignRecord,
            "report": ReportRecord,
            "method": MethodRecord,
            "verification": VerificationRecord,
            "tc23": Tc23Record,
            "methods": MethodsRecord,
            "rtl": RTLRecord,
            "eda": store_module.EdaSummaryRecord,
            "dataset": DatasetRecord,
        }
        produced = {
            "schema_version": store_module.STORE_SCHEMA_VERSION,
            "records": {
                name: sorted(f.name for f in dataclasses.fields(cls))
                for name, cls in record_classes.items()
            },
        }
        golden = json.loads(
            (GOLDEN_DIR / "store_records.schema.json").read_text(encoding="utf-8")
        )
        assert produced == golden, (
            "store record schema drifted from tests/golden/store_records."
            "schema.json; if intentional, regenerate the golden and bump "
            "STORE_SCHEMA_VERSION"
        )


# ---------------------------------------------------------------------------
# Import purity
# ---------------------------------------------------------------------------


class TestImportPurity:
    def test_serving_imports_no_search_modules(self):
        """Subprocess guard: the whole serving package stays search-free."""
        code = (
            "import json, sys\n"
            "import repro.serving\n"
            "import repro.serving.cli, repro.serving.queries\n"
            "import repro.serving.service, repro.serving.store\n"
            "from repro.serving.cli import forbidden_loaded\n"
            "print(json.dumps({'forbidden': forbidden_loaded(),\n"
            "                  'repro': sorted(m for m in sys.modules\n"
            "                                  if m.startswith('repro'))}))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        report = json.loads(result.stdout)
        assert report["forbidden"] == [], (
            "repro.serving imported search-time modules: "
            f"{report['forbidden']} (loaded: {report['repro']})"
        )

    def test_forbidden_list_covers_the_search_stack(self):
        from repro.serving.cli import FORBIDDEN_MODULES

        for prefix in (
            "repro.core.trainer",
            "repro.core.operators",
            "repro.approx",
            "repro.rtl",
            "repro.hardware.synthesis",
            "repro.experiments",
        ):
            assert prefix in FORBIDDEN_MODULES


# ---------------------------------------------------------------------------
# Vectorized true front vs the scalar oracle
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FakeDesign:
    test_accuracy: float
    area_cm2: float


class TestTrueFrontEquivalence:
    def _random_designs(self, rng, n):
        # Quantized values provoke plenty of exact ties.
        accuracies = rng.integers(0, 6, size=n) / 5.0
        areas = rng.integers(1, 6, size=n) / 2.0
        return [FakeDesign(float(a), float(b)) for a, b in zip(accuracies, areas)]

    def test_matches_scalar_oracle(self):
        from repro.evaluation.pareto_analysis import true_pareto_front

        rng = np.random.default_rng(7)
        for n in (0, 1, 2, 3, 8, 40, 120):
            designs = self._random_designs(rng, n)
            fast = true_pareto_front(designs)
            slow = true_pareto_front(designs, slow=True)
            assert len(fast) == len(slow)
            for f, s in zip(fast, slow):
                assert f is s  # same objects, same order

    def test_duplicates_all_survive(self):
        from repro.evaluation.pareto_analysis import true_pareto_front

        twin = [FakeDesign(0.9, 1.0), FakeDesign(0.9, 1.0), FakeDesign(0.5, 2.0)]
        fast = true_pareto_front(twin)
        slow = true_pareto_front(twin, slow=True)
        assert fast == slow == [twin[0], twin[1]]

    def test_mask_semantics(self):
        mask = queries.nondominated_mask([0.9, 0.8, 0.95], [1.0, 2.0, 3.0])
        assert mask.tolist() == [True, False, True]
        assert queries.nondominated_mask([], []).tolist() == []


# ---------------------------------------------------------------------------
# Deterministic selection
# ---------------------------------------------------------------------------


class TestDeterministicSelection:
    def test_area_tie_prefers_accuracy_then_name(self):
        a = _design(0, 0.92, 0.5)
        b = _design(1, 0.90, 0.5)
        picked = queries.select_design([b, a], baseline_accuracy=0.93)
        assert picked is a  # same area, higher accuracy wins
        twin_a = _design(0, 0.92, 0.5)
        twin_b = _design(1, 0.92, 0.5)
        expected = min(twin_a.name, twin_b.name)
        for ordering in ([twin_a, twin_b], [twin_b, twin_a]):
            assert queries.select_design(ordering, 0.93).name == expected

    def test_order_independence(self):
        rng = np.random.default_rng(3)
        designs = [
            _design(i, float(rng.integers(80, 95)) / 100, float(rng.integers(1, 4)) / 2)
            for i in range(12)
        ]
        baseline = 0.93
        reference = queries.select_design(designs, baseline).name
        for _ in range(10):
            shuffled = list(designs)
            rng.shuffle(shuffled)
            assert queries.select_design(shuffled, baseline).name == reference

    def test_fallback_is_deterministic(self):
        # Nothing eligible: most accurate wins, ties by area then name.
        a = _design(0, 0.5, 2.0)
        b = _design(1, 0.5, 1.0)
        assert queries.select_design([a, b], baseline_accuracy=0.99) is b
        assert queries.select_design([], baseline_accuracy=0.99) is None

    def test_evaluated_design_selection_matches_record_selection(self):
        """pareto_analysis.select_design and queries.select agree on ties."""
        from repro.core.pareto import ParetoPoint
        from repro.evaluation.pareto_analysis import (
            design_sort_name,
            select_design as live_select,
        )
        from repro.evaluation.pareto_analysis import EvaluatedDesign
        from repro.hardware.synthesis import HardwareReport

        def live(index, accuracy, area):
            return EvaluatedDesign(
                point=ParetoPoint(
                    error=1.0 - accuracy,
                    area=10.0,
                    accuracy=accuracy,
                    payload=np.array([index], dtype=np.int64),
                ),
                test_accuracy=accuracy,
                report=HardwareReport(
                    area_cm2=area,
                    power_mw=1.0,
                    delay_ms=0.1,
                    voltage=1.0,
                    clock_period_ms=5.0,
                ),
            )

        designs = [live(0, 0.9, 1.0), live(1, 0.9, 1.0), live(2, 0.8, 0.4)]
        picked = live_select(designs, baseline_accuracy=0.92)
        names = [design_sort_name(d) for d in designs]
        # Exact tie between designs 0 and 1: the smaller stable name wins,
        # and the record-level rule picks the same design.
        assert design_sort_name(picked) == min(names[0], names[1])
        records = [
            _design(i, d.test_accuracy, d.area_cm2, name=names[i])
            for i, d in enumerate(designs)
        ]
        assert queries.select_design(records, 0.92).name == design_sort_name(picked)


# ---------------------------------------------------------------------------
# Queries over a populated store
# ---------------------------------------------------------------------------


class TestQueries:
    def test_selection_row(self, store):
        record = store.get_dataset("demo")
        row = queries.selection_row(record)
        assert row["dataset"] == "demo"
        # Budget 0.05 with baseline 0.93: the 0.88 design (area 0.6) is
        # the smallest admissible one.
        assert row["accuracy"] == 0.88 and row["area_cm2"] == 0.6
        tight = queries.selection_row(record, max_accuracy_loss=0.01)
        assert tight["accuracy"] == 0.92

    def test_front_rows_are_nondominated(self, store):
        rows = queries.front_rows(store.get_dataset("demo"))
        assert [row["area_cm2"] for row in rows] == sorted(
            row["area_cm2"] for row in rows
        )
        assert all(set(row) >= {"design", "test_accuracy", "fa_count"} for row in rows)

    def test_fig5_rows_scale_voltage(self, store):
        rows = queries.fig5_rows(store.get_dataset("demo"))
        names = [row["design"] for row in rows]
        assert names == ["baseline_micro20", "tc23", "ours", "ours_0v6"]
        ours = rows[2]
        low = rows[3]
        assert low["voltage"] == pytest.approx(0.6)
        assert low["area_cm2"] == ours["area_cm2"]  # area is voltage-independent
        assert low["power_mw"] < ours["power_mw"]

    def test_fig4_rows_and_points(self, store):
        rows = queries.fig4_rows(store.get_dataset("demo"))
        assert [row["method"] for row in rows] == ["ours", "tc23", "date21"]
        base_area = store.get_front("demo").baseline.area_cm2
        assert rows[0]["norm_area"] == rows[0]["area_cm2"] / base_area
        points = queries.fig4_point_rows(rows)
        assert set(points[0]) == {
            "dataset",
            "method",
            "accuracy",
            "norm_area",
            "norm_power",
        }

    def test_points_schemas_match_golden(self, store):
        from repro.evaluation.artifacts import Artifact

        for name, project, display, rows in (
            (
                "fig4_points",
                queries.fig4_point_rows,
                queries.FIG4_POINTS_DISPLAY,
                queries.fig4_rows(store.get_dataset("demo")),
            ),
            (
                "fig5_points",
                queries.fig5_point_rows,
                queries.FIG5_POINTS_DISPLAY,
                queries.fig5_rows(store.get_dataset("demo")),
            ),
        ):
            artifact = Artifact.build(
                name, project(rows), scale="smoke", seed=0, datasets=("demo",),
                display=display,
            )
            produced = {
                "experiment": artifact.experiment,
                "schema_version": artifact.schema_version,
                "columns": sorted(artifact.columns),
                "display": [list(pair) for pair in artifact.display],
            }
            golden = json.loads(
                (GOLDEN_DIR / f"{name}.schema.json").read_text(encoding="utf-8")
            )
            assert produced == golden, f"{name} schema drifted"

    def test_rtl_resolution(self, store):
        record = store.get_dataset("demo")
        selected = queries.select(record).name
        assert queries.resolve_rtl_design(record) == selected
        with pytest.raises(StoreError, match="no design"):
            queries.resolve_rtl_design(record, design="nope")


# ---------------------------------------------------------------------------
# The async service
# ---------------------------------------------------------------------------


class TestParetoService:
    def test_stampede_one_store_read(self, store):
        """64 identical concurrent queries => exactly one store read."""
        loads = {"n": 0}
        real = store.get_dataset

        def counting(dataset):
            loads["n"] += 1
            return real(dataset)

        store.get_dataset = counting
        service = ParetoService(store)

        async def flood():
            return await asyncio.gather(*(service.select("demo") for _ in range(64)))

        results = asyncio.run(flood())
        assert loads["n"] == 1
        assert service.store_loads == 1
        assert len(results) == 64 and all(r == results[0] for r in results)
        metrics = service.metrics()["operations"]["select"]
        assert metrics["requests"] == 64
        assert metrics["coalesced"] == 63

    def test_mixed_ops_share_one_record_load(self, store):
        loads = {"n": 0}
        real = store.get_dataset

        def counting(dataset):
            loads["n"] += 1
            return real(dataset)

        store.get_dataset = counting
        service = ParetoService(store)

        async def battery():
            await asyncio.gather(
                service.select("demo"),
                service.front("demo"),
                service.feasibility("demo"),
                service.rtl("demo"),
            )

        asyncio.run(battery())
        assert loads["n"] == 1

    def test_rtl_and_errors(self, store):
        service = ParetoService(store)
        rtl = asyncio.run(service.rtl("demo"))
        assert rtl["verilog"].startswith("module ")
        with pytest.raises(StoreError):
            asyncio.run(service.select("missing"))
        assert service.metrics()["operations"]["select"]["errors"] == 1

    def test_latency_metrics_populated(self, store):
        service = ParetoService(store)
        asyncio.run(service.front("demo"))
        summary = service.metrics()["operations"]["front"]
        assert summary["requests"] == 1
        assert summary["p50_seconds"] is not None and summary["p50_seconds"] >= 0.0


# ---------------------------------------------------------------------------
# End-to-end: session publish -> warm-store queries, zero search stages
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def published(tmp_path_factory):
    """A tiny fig4+fig5 session run published into a store."""
    from repro.experiments.config import ExperimentScale
    from repro.experiments.session import ExperimentSession

    scale = ExperimentScale(
        name="tiny-serving",
        datasets=("breast_cancer",),
        max_samples=200,
        gradient_epochs=30,
        gradient_restarts=1,
        ga_population=16,
        ga_generations=6,
        max_front_designs=6,
        seed=0,
    )
    out = tmp_path_factory.mktemp("serve_e2e")
    session = ExperimentSession(scale)
    artifacts = session.run(["fig4", "fig5"], export_dir=out)
    return session, artifacts, out


class TestWarmStoreParity:
    def test_store_published_with_rtl_and_points(self, published):
        _, _, out = published
        store = DesignStore(out / "store")
        assert store.datasets() == ["breast_cancer"]
        record = store.get_dataset("breast_cancer")
        assert record.tc23 is not None and record.methods is not None
        assert len(record.rtl_designs) == len(record.front.designs) > 0
        for name in ("fig4_points", "fig5_points"):
            assert (out / f"{name}.json").is_file()
            assert (out / f"{name}.csv").is_file()

    def test_warm_queries_match_artifacts_without_search(self, published, monkeypatch):
        session, artifacts, out = published
        from repro.core import islands, trainer

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("search stage executed during a warm-store query")

        monkeypatch.setattr(trainer.GATrainer, "train", forbidden)
        monkeypatch.setattr(islands.IslandGATrainer, "train", forbidden)

        service = ParetoService(DesignStore(out / "store"))

        async def battery():
            select = await service.select("breast_cancer")
            front = await service.front("breast_cancer")
            feas = await service.feasibility("breast_cancer")
            rtl = await service.rtl("breast_cancer")
            fig4_points = await service.points("fig4")
            return select, front, feas, rtl, fig4_points

        select, front, feas, rtl, fig4_points = asyncio.run(battery())
        assert [dict(row) for row in artifacts["fig5"].rows] == feas
        table_row = next(
            row for row in artifacts["fig4"].rows if row["method"] == "ours"
        )
        assert select["accuracy"] == table_row["accuracy"]
        assert select["area_cm2"] == table_row["area_cm2"]
        assert front and rtl["verilog"].startswith("//")
        from repro.evaluation.artifacts import Artifact

        exported = Artifact.from_json((out / "fig4_points.json").read_text())
        assert [dict(row) for row in exported.rows] == fig4_points

    def test_cli_battery_is_pure(self, published):
        """The CLI answers under --assert-pure against the real store."""
        _, _, out = published
        queries_jsonl = "\n".join(
            json.dumps(query)
            for query in (
                {"op": "datasets"},
                {"op": "select", "dataset": "breast_cancer"},
                {"op": "front", "dataset": "breast_cancer"},
                {"op": "feasibility", "dataset": "breast_cancer"},
                {"op": "rtl", "dataset": "breast_cancer"},
                {"op": "points", "experiment": "fig5"},
            )
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.serving",
                "--store",
                str(out / "store"),
                "--assert-pure",
                "batch",
            ],
            input=queries_jsonl,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        answers = [json.loads(line) for line in result.stdout.splitlines()]
        assert len(answers) == 6 and all(a["ok"] for a in answers)
        assert "[purity] serving import graph clean" in result.stderr
