"""Integration tests: the experiment harness end to end at smoke scale.

These tests reproduce miniature versions of every table and figure,
asserting the qualitative claims of the paper (our designs shrink area
and power versus the baseline, the stochastic baseline loses accuracy,
voltage scaling moves circuits to smaller power sources, GA training is
slower than gradient training) rather than absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.pipeline import DatasetPipeline
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import run_table3

TINY = ExperimentScale(
    name="tiny",
    datasets=("breast_cancer",),
    max_samples=250,
    gradient_epochs=40,
    gradient_restarts=1,
    ga_population=20,
    ga_generations=10,
    max_front_designs=8,
    seed=0,
)


@pytest.fixture(scope="module")
def pipeline():
    return DatasetPipeline(TINY)


class TestScales:
    def test_known_scales(self):
        assert get_scale("smoke").name == "smoke"
        assert get_scale("ci").name == "ci"
        assert get_scale("full").ga_generations > get_scale("ci").ga_generations
        with pytest.raises(KeyError):
            get_scale("huge")


class TestPipeline:
    def test_baseline_stage(self, pipeline):
        result = pipeline.dataset("breast_cancer")
        assert result.baseline.test_accuracy > 0.85
        assert result.baseline.report.area_cm2 > 1.0
        assert result.approximate is None

    def test_caching(self, pipeline):
        first = pipeline.dataset("breast_cancer")
        second = pipeline.dataset("breast_cancer")
        assert first is second

    def test_approximate_stage(self, pipeline):
        result = pipeline.approximate("breast_cancer")
        approx = result.approximate
        assert approx is not None
        assert approx.selected is not None
        assert len(approx.designs) >= 1
        assert len(approx.true_front) >= 1


class TestTable1:
    def test_rows_and_formatting(self, pipeline):
        rows = run_table1(pipeline)
        assert len(rows) == 1
        row = rows[0]
        assert row["topology"] == "(10, 3, 2)"
        assert row["accuracy"] > 0.85
        assert row["area_cm2"] > 0
        text = format_table1(rows)
        assert "breast_cancer" in text


class TestTable2:
    def test_reduction_factors_exceed_one(self, pipeline):
        rows = run_table2(pipeline)
        row = rows[0]
        # The headline claim: the approximate MLP is smaller and less
        # power hungry than the exact baseline within the 5% loss budget
        # (the paper reports >5x; at the tiny CI budget we require >1.5x).
        assert row["area_reduction"] > 1.5
        assert row["power_reduction"] > 1.5
        assert row["accuracy"] >= row["baseline_accuracy"] - 0.07
        assert "breast_cancer" in format_table2(rows)


class TestFig4:
    def test_methods_present_and_ours_beats_baseline(self, pipeline):
        rows = run_fig4(pipeline)
        methods = {row["method"] for row in rows}
        assert {"ours", "tc23", "date21"}.issubset(methods)
        ours = next(row for row in rows if row["method"] == "ours")
        assert ours["norm_area"] < 1.0
        assert ours["norm_power"] < 1.0
        date21 = next(row for row in rows if row["method"] == "date21")
        # The stochastic baseline loses far more accuracy than ours.
        assert date21["accuracy"] <= ours["accuracy"]


class TestFig5:
    def test_voltage_scaling_moves_to_smaller_source(self, pipeline):
        rows = run_fig5(pipeline)
        ours = next(row for row in rows if row["design"] == "ours")
        ours_low = next(row for row in rows if row["design"] == "ours_0v6")
        baseline = next(row for row in rows if row["design"] == "baseline_micro20")
        assert ours_low["power_mw"] < ours["power_mw"]
        assert ours["power_mw"] < baseline["power_mw"]
        assert ours_low["voltage"] == pytest.approx(0.6)


class TestTable3:
    def test_gradient_faster_than_ga(self, pipeline):
        rows = run_table3(pipeline)
        row = rows[0]
        assert row["grad_seconds"] < row["ga_seconds"]
        # Both GA flows request the same evaluation budget; the unique
        # lookup counts stay within it (in-batch duplicates are folded).
        budget = pipeline.scale.ga_population * (pipeline.scale.ga_generations + 1)
        assert 0 < row["ga_evaluations"] <= budget
        assert 0 < row["ga_axc_evaluations"] <= budget
        # GA-AxC should not be drastically slower than the plain GA.
        assert row["ga_axc_seconds"] < row["ga_seconds"] * 3 + 1.0
